//! The tightly-integrated scheduler fabric: Table I served in a couple of cycles per
//! instruction.
//!
//! [`TisFabric`] assembles one [`PicosDelegate`] per core around a shared
//! [`PicosManager`] (which owns the Picos device) and exposes the result as a
//! [`SchedulerFabric`], the interface runtimes program against. Each operation costs the core a
//! fixed RoCC instruction latency (2 cycles on Rocket, Section IV-F2) plus whatever the blocking
//! *Retire Task* transaction adds — this is the "FPGA-CPU communication latency eliminated"
//! property the paper's speedups come from.

use tis_machine::fabric::{CoreId, FabricOutcome, FabricStats, SchedulerFabric};
use tis_picos::PicosConfig;
use tis_sim::Cycle;

use crate::delegate::PicosDelegate;
use crate::manager::{ManagerConfig, PicosManager};

/// Configuration of the tightly-integrated scheduling subsystem.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TisConfig {
    /// Latency of one RoCC custom instruction as seen by the issuing core.
    pub rocc_latency: Cycle,
    /// Picos Manager sizing and crossing latencies.
    pub manager: ManagerConfig,
    /// Picos device configuration (tracker capacities, pipeline timing, ready-queue depth).
    pub picos: PicosConfig,
}

impl Default for TisConfig {
    fn default() -> Self {
        TisConfig {
            rocc_latency: 2,
            manager: ManagerConfig::default(),
            picos: PicosConfig::default(),
        }
    }
}

/// The RoCC-integrated Picos scheduling fabric (the paper's contribution).
#[derive(Debug, Clone)]
pub struct TisFabric {
    config: TisConfig,
    manager: PicosManager,
    delegates: Vec<PicosDelegate>,
    stats: FabricStats,
}

impl TisFabric {
    /// Builds the fabric for a machine with `cores` cores.
    pub fn new(cores: usize, config: TisConfig) -> Self {
        TisFabric {
            config,
            manager: PicosManager::new(cores, config.manager, config.picos),
            delegates: (0..cores).map(PicosDelegate::new).collect(),
            stats: FabricStats::default(),
        }
    }

    /// Builds the fabric with default configuration.
    pub fn with_cores(cores: usize) -> Self {
        TisFabric::new(cores, TisConfig::default())
    }

    /// Configuration in use.
    pub fn config(&self) -> TisConfig {
        self.config
    }

    /// The shared Picos Manager (for statistics and tests).
    pub fn manager(&self) -> &PicosManager {
        &self.manager
    }

    /// Per-core delegate statistics.
    pub fn delegate(&self, core: CoreId) -> &PicosDelegate {
        &self.delegates[core]
    }

    /// Number of tasks currently tracked by Picos.
    pub fn tasks_in_flight(&self) -> usize {
        self.manager.tasks_in_flight()
    }
}

impl SchedulerFabric for TisFabric {
    fn name(&self) -> &'static str {
        "rocc-picos"
    }

    fn set_time_horizon(&mut self, safe_now: Cycle) {
        self.manager.set_time_horizon(safe_now);
    }

    fn submission_request(&mut self, core: CoreId, packet_count: u32, now: Cycle) -> (Cycle, FabricOutcome<()>) {
        self.stats.operations += 1;
        let ok = self.delegates[core].submission_request(&mut self.manager, packet_count, now);
        if !ok {
            self.stats.submission_failures += 1;
        }
        (self.config.rocc_latency, if ok { FabricOutcome::Success(()) } else { FabricOutcome::Failure })
    }

    fn submit_packets(&mut self, core: CoreId, packets: &[u32], now: Cycle) -> (Cycle, FabricOutcome<()>) {
        self.stats.operations += 1;
        let ok = self.delegates[core].submit_packets(&mut self.manager, packets, now);
        if ok && self.manager.stats().descriptors_forwarded > self.stats.tasks_submitted {
            self.stats.tasks_submitted = self.manager.stats().descriptors_forwarded;
        }
        (self.config.rocc_latency, if ok { FabricOutcome::Success(()) } else { FabricOutcome::Failure })
    }

    fn ready_task_request(&mut self, core: CoreId, now: Cycle) -> (Cycle, FabricOutcome<()>) {
        self.stats.operations += 1;
        let ok = self.delegates[core].ready_task_request(&mut self.manager, now);
        (self.config.rocc_latency, if ok { FabricOutcome::Success(()) } else { FabricOutcome::Failure })
    }

    fn fetch_sw_id(&mut self, core: CoreId, now: Cycle) -> (Cycle, FabricOutcome<u64>) {
        self.stats.operations += 1;
        match self.delegates[core].fetch_sw_id(&mut self.manager, now) {
            Some(sw) => (self.config.rocc_latency, FabricOutcome::Success(sw)),
            None => {
                self.stats.fetch_failures += 1;
                (self.config.rocc_latency, FabricOutcome::Failure)
            }
        }
    }

    fn fetch_picos_id(&mut self, core: CoreId, now: Cycle) -> (Cycle, FabricOutcome<u32>) {
        self.stats.operations += 1;
        match self.delegates[core].fetch_picos_id(&mut self.manager, now) {
            Some(pid) => {
                self.stats.tasks_dispatched += 1;
                (self.config.rocc_latency, FabricOutcome::Success(pid))
            }
            None => {
                self.stats.fetch_failures += 1;
                (self.config.rocc_latency, FabricOutcome::Failure)
            }
        }
    }

    fn retire_task(&mut self, core: CoreId, picos_id: u32, now: Cycle) -> Cycle {
        self.stats.operations += 1;
        self.stats.tasks_retired += 1;
        let manager_latency = self.delegates[core].retire_task(&mut self.manager, picos_id, now);
        self.config.rocc_latency + manager_latency
    }

    fn stats(&self) -> FabricStats {
        let picos = self.manager.picos().stats();
        FabricStats {
            tracker_losses: picos.tracker_losses,
            tracker_resubmits: picos.tracker_resubmits,
            tracker_recovery_cycles: picos.tracker_recovery_cycles,
            ..self.stats.clone()
        }
    }

    fn set_observing(&mut self, on: bool) {
        self.manager.set_observing(on);
    }

    fn drain_ready_log(&mut self, sink: &mut dyn FnMut(Cycle, u64)) {
        self.manager.drain_ready_log(sink);
    }

    fn occupancy(&self) -> (usize, usize) {
        self.manager.occupancy()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tis_picos::{encode_nonzero_prefix, SubmittedTask};
    use tis_taskmodel::Dependence;

    /// Submit a task through the public fabric API, exactly as a runtime would.
    fn submit(fabric: &mut TisFabric, core: usize, sw_id: u64, deps: Vec<Dependence>, now: u64) -> bool {
        let pkts = encode_nonzero_prefix(&SubmittedTask::new(sw_id, deps));
        let (_, out) = fabric.submission_request(core, pkts.len() as u32, now);
        if !out.is_success() {
            return false;
        }
        for chunk in pkts.chunks(3) {
            let (_, out) = fabric.submit_packets(core, chunk, now);
            assert!(out.is_success());
        }
        true
    }

    #[test]
    fn every_instruction_costs_the_rocc_latency() {
        let mut f = TisFabric::with_cores(2);
        let (lat, _) = f.submission_request(0, 3, 0);
        assert_eq!(lat, 2);
        let (lat, _) = f.ready_task_request(1, 0);
        assert_eq!(lat, 2);
        let (lat, _) = f.fetch_sw_id(1, 0);
        assert_eq!(lat, 2);
    }

    #[test]
    fn end_to_end_task_lifecycle_through_the_fabric() {
        let mut f = TisFabric::with_cores(2);
        assert!(submit(&mut f, 0, 99, vec![Dependence::write(0x1000)], 0));
        let (_, out) = f.ready_task_request(1, 10);
        assert!(out.is_success());
        let mut now = 10;
        let sw = loop {
            now += 4;
            let (_, out) = f.fetch_sw_id(1, now);
            if let FabricOutcome::Success(sw) = out {
                break sw;
            }
            assert!(now < 10_000, "task never became ready");
        };
        assert_eq!(sw, 99);
        let (_, out) = f.fetch_picos_id(1, now);
        let pid = out.success().expect("picos id after sw id");
        let lat = f.retire_task(1, pid, now + 500);
        assert!(lat >= f.config().rocc_latency);
        assert_eq!(f.tasks_in_flight(), 0);
        let stats = SchedulerFabric::stats(&f);
        assert_eq!(stats.tasks_dispatched, 1);
        assert_eq!(stats.tasks_retired, 1);
        assert!(stats.operations >= 6);
    }

    #[test]
    fn dependent_task_is_withheld_until_predecessor_retires() {
        let mut f = TisFabric::with_cores(2);
        assert!(submit(&mut f, 0, 1, vec![Dependence::write(0x2000)], 0));
        assert!(submit(&mut f, 0, 2, vec![Dependence::read(0x2000)], 5));
        let (_, out) = f.ready_task_request(1, 10);
        assert!(out.is_success());
        let mut now = 10;
        let first = loop {
            now += 4;
            if let FabricOutcome::Success(sw) = f.fetch_sw_id(1, now).1 {
                break sw;
            }
            assert!(now < 10_000);
        };
        assert_eq!(first, 1);
        let pid1 = f.fetch_picos_id(1, now).1.success().unwrap();
        // Ask for more work: nothing can arrive until task 1 retires.
        let (_, out) = f.ready_task_request(1, now);
        assert!(out.is_success());
        for probe in 0..20 {
            assert!(!f.fetch_sw_id(1, now + probe * 10).1.is_success());
        }
        f.retire_task(1, pid1, now + 300);
        let mut now2 = now + 300;
        let second = loop {
            now2 += 4;
            if let FabricOutcome::Success(sw) = f.fetch_sw_id(1, now2).1 {
                break sw;
            }
            assert!(now2 < now + 10_000);
        };
        assert_eq!(second, 2);
    }

    #[test]
    fn submission_failure_when_picos_saturated_is_non_blocking() {
        use tis_picos::{PicosConfig, TrackerConfig};
        let cfg = TisConfig {
            picos: PicosConfig {
                tracker: TrackerConfig { task_memory_entries: 2, address_table_entries: 64 },
                ..PicosConfig::default()
            },
            ..TisConfig::default()
        };
        let mut f = TisFabric::new(1, cfg);
        assert!(submit(&mut f, 0, 1, vec![], 0));
        assert!(submit(&mut f, 0, 2, vec![], 1));
        // Third task: task memory holds 2 in-flight tasks, the forward queue backs up, and the
        // next submission request fails fast instead of stalling the core.
        let mut accepted = 0;
        for i in 0..4 {
            if submit(&mut f, 0, 10 + i, vec![], 10 + i) {
                accepted += 1;
            }
        }
        assert!(accepted < 4, "saturated hardware must reject some submissions");
        assert!(SchedulerFabric::stats(&f).submission_failures > 0);
    }

    #[test]
    fn per_core_delegates_are_independent() {
        let mut f = TisFabric::with_cores(4);
        assert!(submit(&mut f, 2, 5, vec![], 0));
        assert!(f.ready_task_request(3, 1).1.is_success());
        let mut now = 1;
        while !f.fetch_sw_id(3, now).1.is_success() {
            now += 4;
            assert!(now < 10_000);
        }
        // Core 1 never fetched a SW ID, so its Fetch Picos ID must fail even though core 3's
        // queue has an armed entry.
        assert!(!f.fetch_picos_id(1, now).1.is_success());
        assert!(f.fetch_picos_id(3, now).1.is_success());
        assert!(f.delegate(3).stats().total_issued() > 0);
        assert_eq!(f.delegate(0).stats().total_issued(), 0);
    }
}
