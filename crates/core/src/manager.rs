//! Picos Manager (Section IV-F): the glue between the per-core Picos Delegates and Picos itself.
//!
//! The manager decouples the CPU from the accelerator's API and adds the structures that make the
//! integration fast:
//!
//! * **Submission Handler** — per-core submission buffers serialized by a *Guided Arbiter* (only
//!   one core transmits a descriptor to Picos at a time, and a started descriptor finishes before
//!   another begins), plus the *Zero Padder* that expands the compact 3+3·D-packet sequences the
//!   cores send into the 48-packet descriptors Picos expects;
//! * **Work-Fetch Arbiter** — a FIFO routing queue that serves *Ready Task Request*s in the exact
//!   order cores issued them;
//! * **Packet Encoder** — compresses the three 32-bit ready packets produced by Picos into one
//!   96-bit `(Picos ID, SW ID)` tuple stored in the per-core ready queues;
//! * **per-core ready queues** — small buffers that hide roughly half of Picos' 8-cycle ready
//!   fetch latency from the cores;
//! * **Round-Robin Arbiter** — merges the retirement packets of all cores into Picos' single
//!   retirement interface;
//! * **protocol crossings** — modelled as a fixed per-transfer latency between the manager's
//!   queues and Picos' non-fallthrough queues.

use tis_picos::{decode_descriptor_into, Picos, PicosConfig, SubmittedTask, PACKETS_PER_DESCRIPTOR};
use tis_sim::{BoundedQueue, Cycle};

/// Identifier of a core attached to the manager.
pub type CoreId = usize;

/// Timing and sizing knobs of the Picos Manager itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ManagerConfig {
    /// Entries in each core-specific ready queue.
    pub ready_queue_per_core: usize,
    /// Depth of the work-fetch arbiter's routing queue.
    pub routing_queue_depth: usize,
    /// Latency of a protocol crossing between Chisel queues and Picos queues, in cycles.
    pub protocol_crossing: Cycle,
    /// Latency of the Packet Encoder compressing three ready packets into one tuple.
    pub packet_encode: Cycle,
    /// Occupancy of the Round-Robin retirement arbiter per retirement packet.
    pub retire_arbiter_occupancy: Cycle,
}

impl Default for ManagerConfig {
    fn default() -> Self {
        ManagerConfig {
            ready_queue_per_core: 2,
            routing_queue_depth: 16,
            protocol_crossing: 2,
            packet_encode: 1,
            retire_arbiter_occupancy: 1,
        }
    }
}

/// A 96-bit ready-task tuple sitting in a core-specific ready queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadyEntry {
    /// Picos task-memory index, needed at retirement.
    pub picos_id: u32,
    /// Software identifier chosen by the submitting runtime.
    pub sw_id: u64,
    /// Cycle from which the entry is visible to Fetch SW ID.
    pub available_at: Cycle,
}

#[derive(Debug, Clone)]
struct SubmissionBuffer {
    expected: usize,
    packets: Vec<u32>,
}

/// Aggregate statistics of the manager.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ManagerStats {
    /// Descriptors forwarded to Picos.
    pub descriptors_forwarded: u64,
    /// Zero packets appended by the Zero Padder.
    pub zero_packets_padded: u64,
    /// Ready tuples routed to core-specific queues.
    pub ready_routed: u64,
    /// Ready Task Requests rejected because the routing queue was full.
    pub routing_rejections: u64,
    /// Submission Requests rejected (buffer busy or Picos full).
    pub submission_rejections: u64,
    /// Retirement packets merged by the round-robin arbiter.
    pub retirements: u64,
}

/// The Picos Manager.
#[derive(Debug, Clone)]
pub struct PicosManager {
    cores: usize,
    config: ManagerConfig,
    picos: Picos,
    submission_buffers: Vec<Option<SubmissionBuffer>>,
    /// Guided-arbiter forwarding order: cores whose buffers are complete, oldest first.
    forward_queue: BoundedQueue<CoreId>,
    routing_queue: BoundedQueue<CoreId>,
    ready_queues: Vec<BoundedQueue<ReadyEntry>>,
    retire_arbiter_free_at: Cycle,
    stats: ManagerStats,
    /// Scratch buffer the Zero Padder expands descriptors into, reused across submissions.
    scratch_descriptor: Vec<u32>,
    /// Scratch task the expanded descriptor is decoded into, reused across submissions.
    scratch_task: SubmittedTask,
}

impl PicosManager {
    /// Creates a manager for `cores` cores around a Picos device.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero.
    pub fn new(cores: usize, config: ManagerConfig, picos_config: PicosConfig) -> Self {
        assert!(cores > 0, "manager needs at least one core");
        PicosManager {
            cores,
            config,
            picos: Picos::new(picos_config),
            submission_buffers: vec![None; cores],
            forward_queue: BoundedQueue::new(cores.max(1)),
            routing_queue: BoundedQueue::new(config.routing_queue_depth),
            ready_queues: (0..cores)
                .map(|_| BoundedQueue::new(config.ready_queue_per_core))
                .collect(),
            retire_arbiter_free_at: 0,
            stats: ManagerStats::default(),
            scratch_descriptor: Vec::with_capacity(PACKETS_PER_DESCRIPTOR),
            scratch_task: SubmittedTask::new(0, Vec::new()),
        }
    }

    /// Number of attached cores.
    pub fn cores(&self) -> usize {
        self.cores
    }

    /// Manager configuration.
    pub fn config(&self) -> ManagerConfig {
        self.config
    }

    /// Immutable access to the underlying Picos device (for statistics).
    pub fn picos(&self) -> &Picos {
        &self.picos
    }

    /// Manager statistics.
    pub fn stats(&self) -> &ManagerStats {
        &self.stats
    }

    /// Forwards the engine's safe-time horizon to the Picos device (see
    /// [`Picos::set_time_horizon`](tis_picos::Picos::set_time_horizon)).
    pub fn set_time_horizon(&mut self, safe_now: Cycle) {
        self.picos.set_time_horizon(safe_now);
    }

    /// Services internal data movement up to cycle `now`:
    /// complete submission buffers are forwarded to Picos (Guided Arbiter + Zero Padder), and
    /// ready descriptors are routed to the cores waiting in the work-fetch routing queue.
    pub fn advance(&mut self, now: Cycle) {
        // 1. Forward complete descriptors to Picos, in guided-arbiter order.
        while let Some(&core) = self.forward_queue.front() {
            if !self.picos.can_accept_submission() {
                break;
            }
            let buffer = self.submission_buffers[core]
                .as_ref()
                .expect("forward queue only holds cores with a buffer");
            debug_assert!(buffer.packets.len() >= buffer.expected);
            // Zero Padder: expand the non-zero prefix into a full descriptor in the reused
            // scratch buffer and decode it into the reused scratch task — no allocation.
            self.scratch_descriptor.clear();
            self.scratch_descriptor.extend_from_slice(&buffer.packets);
            let padded = PACKETS_PER_DESCRIPTOR - self.scratch_descriptor.len();
            self.scratch_descriptor.resize(PACKETS_PER_DESCRIPTOR, 0);
            if let Err(e) = decode_descriptor_into(&self.scratch_descriptor, &mut self.scratch_task)
            {
                panic!("runtime submitted a malformed descriptor: {e}");
            }
            match self.picos.try_submit(&self.scratch_task, now) {
                Ok(_) => {
                    self.stats.descriptors_forwarded += 1;
                    self.stats.zero_packets_padded += padded as u64;
                    self.submission_buffers[core] = None;
                    self.forward_queue.pop();
                }
                Err(_) => break, // Picos filled up between the check and the submit; retry later.
            }
        }
        // 2. Route ready descriptors to requesting cores, strictly in request order.
        while let Some(&core) = self.routing_queue.front() {
            if self.ready_queues[core].is_full() {
                break; // in-order service: the head blocks until its target queue has space
            }
            let Some(rt) = self.picos.pop_ready(now) else { break };
            let entry = ReadyEntry {
                picos_id: rt.picos_id.0,
                sw_id: rt.sw_id,
                available_at: now + self.config.protocol_crossing + self.config.packet_encode,
            };
            self.ready_queues[core]
                .push(entry)
                .expect("checked for space above");
            self.routing_queue.pop();
            self.stats.ready_routed += 1;
        }
    }

    /// *Submission Request* (Section IV-E1): reserve this core's submission buffer for a
    /// descriptor of `packet_count` non-zero packets. Fails if the core still has an unfinished
    /// submission buffered or if Picos cannot currently accept new tasks.
    pub fn submission_request(&mut self, core: CoreId, packet_count: u32, now: Cycle) -> bool {
        self.advance(now);
        let buffer_busy = self.submission_buffers[core].is_some();
        let backlog = self.forward_queue.len();
        // Refuse new submissions when the accelerator is saturated: either the buffer is busy,
        // or Picos is full and cannot drain the already-queued descriptors.
        if buffer_busy
            || packet_count as usize > PACKETS_PER_DESCRIPTOR
            || packet_count < 3
            || (!self.picos.can_accept_submission() && backlog > 0)
            || self.forward_queue.is_full()
        {
            self.stats.submission_rejections += 1;
            return false;
        }
        self.submission_buffers[core] = Some(SubmissionBuffer {
            expected: packet_count as usize,
            packets: Vec::with_capacity(packet_count as usize),
        });
        true
    }

    /// *Submit Packet* / *Submit Three Packets*: append packets to this core's submission buffer.
    /// Fails if no submission request is outstanding or the packets overflow the announced count.
    pub fn push_packets(&mut self, core: CoreId, packets: &[u32], now: Cycle) -> bool {
        let Some(buffer) = self.submission_buffers[core].as_mut() else {
            return false;
        };
        if buffer.packets.len() + packets.len() > buffer.expected {
            return false;
        }
        buffer.packets.extend_from_slice(packets);
        if buffer.packets.len() == buffer.expected {
            self.forward_queue
                .push(core)
                .expect("forward queue sized to core count, one entry per core at most");
        }
        self.advance(now);
        true
    }

    /// *Ready Task Request*: enqueue this core in the work-fetch arbiter. Fails when the routing
    /// queue is full — the non-blocking behaviour that avoids Deadlock Scenario 2 of the paper.
    pub fn ready_task_request(&mut self, core: CoreId, now: Cycle) -> bool {
        self.advance(now);
        if self.routing_queue.push(core).is_err() {
            self.stats.routing_rejections += 1;
            return false;
        }
        self.advance(now);
        true
    }

    /// Front of a core's private ready queue, if visible at `now`.
    pub fn front_ready(&mut self, core: CoreId, now: Cycle) -> Option<ReadyEntry> {
        self.advance(now);
        match self.ready_queues[core].front() {
            Some(e) if e.available_at <= now => Some(*e),
            _ => None,
        }
    }

    /// Pops the front of a core's private ready queue (used by *Fetch Picos ID*).
    pub fn pop_ready(&mut self, core: CoreId, now: Cycle) -> Option<ReadyEntry> {
        self.advance(now);
        match self.ready_queues[core].front() {
            Some(e) if e.available_at <= now => self.ready_queues[core].pop(),
            _ => None,
        }
    }

    /// *Retire Task*: push a retirement packet through the Round-Robin arbiter into Picos.
    /// Returns the cycles the issuing core is held by the (blocking) transaction.
    ///
    /// # Panics
    ///
    /// Panics if the Picos ID does not name an in-flight task — that is a runtime bug (double
    /// retirement), not a recoverable hardware condition.
    pub fn retire(&mut self, _core: CoreId, picos_id: u32, now: Cycle) -> Cycle {
        self.advance(now);
        let wait = self.retire_arbiter_free_at.saturating_sub(now);
        let start = now + wait;
        self.retire_arbiter_free_at = start + self.config.retire_arbiter_occupancy;
        self.picos
            .retire(tis_picos::PicosId(picos_id), start)
            .unwrap_or_else(|e| panic!("retirement of an unknown task: {e}"));
        self.stats.retirements += 1;
        self.advance(now);
        wait + self.config.retire_arbiter_occupancy + self.config.protocol_crossing
    }

    /// Whether any task is still in flight inside Picos.
    pub fn tasks_in_flight(&self) -> usize {
        self.picos.in_flight()
    }

    /// Arms (or disarms) ready-publication logging in the underlying Picos device (see
    /// [`Picos::set_observing`](tis_picos::Picos::set_observing)).
    pub fn set_observing(&mut self, on: bool) {
        self.picos.set_observing(on);
    }

    /// Drains the device's buffered ready publications as `(publish_cycle, sw_id)` pairs.
    pub fn drain_ready_log(&mut self, sink: &mut dyn FnMut(Cycle, u64)) {
        self.picos.drain_ready_log(sink);
    }

    /// Occupancy gauges for the metrics timeline: `(tasks in flight inside Picos, ready
    /// descriptors anywhere in the fetch path)` — the device's ready queue plus the per-core
    /// staging queues.
    pub fn occupancy(&self) -> (usize, usize) {
        let staged: usize = self.ready_queues.iter().map(BoundedQueue::len).sum();
        (self.picos.in_flight(), self.picos.ready_queue_len() + staged)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tis_picos::{PicosTiming, SubmittedTask};
    use tis_taskmodel::Dependence;

    fn manager(cores: usize) -> PicosManager {
        PicosManager::new(cores, ManagerConfig::default(), PicosConfig::default())
    }

    fn packets_for(sw_id: u64, deps: Vec<Dependence>) -> Vec<u32> {
        tis_picos::encode_nonzero_prefix(&SubmittedTask::new(sw_id, deps))
    }

    #[test]
    fn submit_fetch_retire_happy_path() {
        let mut m = manager(2);
        let pkts = packets_for(42, vec![]);
        assert!(m.submission_request(0, pkts.len() as u32, 0));
        assert!(m.push_packets(0, &pkts, 1));
        // Core 1 asks for work and eventually receives the task.
        assert!(m.ready_task_request(1, 10));
        let mut now = 10;
        let entry = loop {
            now += 5;
            if let Some(e) = m.front_ready(1, now) {
                break e;
            }
            assert!(now < 10_000, "ready task never arrived");
        };
        assert_eq!(entry.sw_id, 42);
        let popped = m.pop_ready(1, now).unwrap();
        assert_eq!(popped.picos_id, entry.picos_id);
        let lat = m.retire(1, popped.picos_id, now + 100);
        assert!(lat >= 1);
        assert_eq!(m.tasks_in_flight(), 0);
        assert_eq!(m.stats().descriptors_forwarded, 1);
        assert_eq!(m.stats().zero_packets_padded, 45, "task with 0 deps pads 45 zero packets");
    }

    #[test]
    fn zero_padder_accounts_per_dependence() {
        let mut m = manager(1);
        let pkts = packets_for(7, vec![Dependence::write(0x100), Dependence::read(0x200)]);
        assert_eq!(pkts.len(), 9);
        assert!(m.submission_request(0, 9, 0));
        assert!(m.push_packets(0, &pkts, 0));
        m.advance(1_000);
        assert_eq!(m.stats().zero_packets_padded, 48 - 9);
    }

    #[test]
    fn submission_request_rejects_second_request_while_buffer_busy() {
        let mut m = manager(2);
        assert!(m.submission_request(0, 6, 0));
        assert!(!m.submission_request(0, 6, 1), "buffer still open");
        assert!(m.submission_request(1, 6, 2), "another core's buffer is independent");
        assert_eq!(m.stats().submission_rejections, 1);
    }

    #[test]
    fn submission_request_validates_packet_count() {
        let mut m = manager(1);
        assert!(!m.submission_request(0, 2, 0), "fewer than a header is malformed");
        assert!(!m.submission_request(0, 49, 0), "more than a descriptor is malformed");
    }

    #[test]
    fn push_without_request_fails() {
        let mut m = manager(1);
        assert!(!m.push_packets(0, &[1, 2, 3], 0));
    }

    #[test]
    fn push_more_than_announced_fails() {
        let mut m = manager(1);
        let pkts = packets_for(1, vec![]);
        assert!(m.submission_request(0, 3, 0));
        assert!(m.push_packets(0, &pkts, 0));
        assert!(!m.push_packets(0, &[9], 1), "descriptor already complete");
    }

    #[test]
    fn ready_requests_served_in_request_order() {
        let mut m = manager(3);
        // Submit two independent tasks.
        for (i, sw) in [11u64, 22].iter().enumerate() {
            let pkts = packets_for(*sw, vec![]);
            assert!(m.submission_request(i, pkts.len() as u32, 0));
            assert!(m.push_packets(i, &pkts, 0));
        }
        // Core 2 asks first, then core 0: core 2 must get the first ready task (sw 11).
        assert!(m.ready_task_request(2, 5));
        assert!(m.ready_task_request(0, 6));
        let mut now = 6;
        let (mut got2, mut got0) = (None, None);
        while (got2.is_none() || got0.is_none()) && now < 10_000 {
            now += 5;
            if got2.is_none() {
                got2 = m.front_ready(2, now);
            }
            if got0.is_none() {
                got0 = m.front_ready(0, now);
            }
        }
        assert_eq!(got2.unwrap().sw_id, 11, "first requester gets the first ready task");
        assert_eq!(got0.unwrap().sw_id, 22);
    }

    #[test]
    fn routing_queue_full_returns_failure() {
        let cfg = ManagerConfig { routing_queue_depth: 1, ..ManagerConfig::default() };
        let mut m = PicosManager::new(2, cfg, PicosConfig::default());
        assert!(m.ready_task_request(0, 0));
        assert!(!m.ready_task_request(1, 1), "routing queue holds a single outstanding request");
        assert_eq!(m.stats().routing_rejections, 1);
    }

    #[test]
    fn fetch_from_empty_queue_is_none() {
        let mut m = manager(1);
        assert!(m.front_ready(0, 100).is_none());
        assert!(m.pop_ready(0, 100).is_none());
    }

    #[test]
    #[should_panic(expected = "unknown task")]
    fn double_retire_panics() {
        let mut m = manager(1);
        let pkts = packets_for(5, vec![]);
        assert!(m.submission_request(0, pkts.len() as u32, 0));
        assert!(m.push_packets(0, &pkts, 0));
        m.ready_task_request(0, 10);
        let mut now = 10;
        let e = loop {
            now += 5;
            if let Some(e) = m.pop_ready(0, now) {
                break e;
            }
        };
        m.retire(0, e.picos_id, now);
        m.retire(0, e.picos_id, now + 10);
    }

    #[test]
    fn ready_latency_reflects_picos_pipeline_and_crossing() {
        let mut m = manager(1);
        let pkts = packets_for(9, vec![]);
        assert!(m.submission_request(0, pkts.len() as u32, 0));
        assert!(m.push_packets(0, &pkts, 0));
        assert!(m.ready_task_request(0, 0));
        // The entry cannot be visible before Picos' submission pipeline + ready publication.
        let floor = PicosTiming::default().submission_cycles(0);
        assert!(m.front_ready(0, floor / 2).is_none());
        let mut now = floor;
        while m.front_ready(0, now).is_none() {
            now += 1;
            assert!(now < 1_000);
        }
        assert!(now >= floor);
    }
}
