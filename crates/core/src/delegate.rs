//! The per-core Picos Delegate (Section IV-E).
//!
//! One delegate is instantiated per Rocket core (the "ROCC Acc-Stub" of Figure 2). It decodes
//! the custom instructions issued by its core and carries them out against the shared
//! [`PicosManager`]. The only per-core architectural state it
//! keeps is the *SW-ID-fetched* flag that couples `Fetch SW ID` and `Fetch Picos ID`: the
//! Picos ID of a ready task can only be fetched (and the entry popped) after its SW ID has been
//! successfully read, exactly as specified in Sections IV-E5 and IV-E6.

use tis_sim::Cycle;

use crate::manager::{CoreId, PicosManager};
use crate::rocc::TaskSchedOp;

/// Per-core instruction counters (one slot per Table-I operation).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DelegateStats {
    /// Instructions issued, indexed like [`TaskSchedOp::ALL`].
    pub issued: [u64; 7],
    /// Instructions that returned the failure flag, indexed like [`TaskSchedOp::ALL`].
    pub failed: [u64; 7],
}

impl DelegateStats {
    fn index(op: TaskSchedOp) -> usize {
        TaskSchedOp::ALL.iter().position(|&o| o == op).expect("op is in ALL")
    }

    fn record(&mut self, op: TaskSchedOp, ok: bool) {
        let i = Self::index(op);
        self.issued[i] += 1;
        if !ok {
            self.failed[i] += 1;
        }
    }

    /// Total instructions issued by this core.
    pub fn total_issued(&self) -> u64 {
        self.issued.iter().sum()
    }

    /// Total instructions that reported failure.
    pub fn total_failed(&self) -> u64 {
        self.failed.iter().sum()
    }
}

/// The RoCC accelerator stub instantiated in every core.
#[derive(Debug, Clone, Default)]
pub struct PicosDelegate {
    core: CoreId,
    sw_id_fetched: bool,
    stats: DelegateStats,
}

impl PicosDelegate {
    /// Creates the delegate for a given core.
    pub fn new(core: CoreId) -> Self {
        PicosDelegate { core, sw_id_fetched: false, stats: DelegateStats::default() }
    }

    /// Core this delegate belongs to.
    pub fn core(&self) -> CoreId {
        self.core
    }

    /// Instruction statistics.
    pub fn stats(&self) -> &DelegateStats {
        &self.stats
    }

    /// *Submission Request* — returns `true` on success.
    pub fn submission_request(&mut self, manager: &mut PicosManager, packet_count: u32, now: Cycle) -> bool {
        let ok = manager.submission_request(self.core, packet_count, now);
        self.stats.record(TaskSchedOp::SubmissionRequest, ok);
        ok
    }

    /// *Submit Packet* (one packet) or *Submit Three Packets* (three packets) — returns `true`
    /// on success.
    pub fn submit_packets(&mut self, manager: &mut PicosManager, packets: &[u32], now: Cycle) -> bool {
        let op = if packets.len() >= 3 { TaskSchedOp::SubmitThreePackets } else { TaskSchedOp::SubmitPacket };
        let ok = manager.push_packets(self.core, packets, now);
        self.stats.record(op, ok);
        ok
    }

    /// *Ready Task Request* — returns `true` on success.
    pub fn ready_task_request(&mut self, manager: &mut PicosManager, now: Cycle) -> bool {
        let ok = manager.ready_task_request(self.core, now);
        self.stats.record(TaskSchedOp::ReadyTaskRequest, ok);
        ok
    }

    /// *Fetch SW ID* — peeks the front of the core's private ready queue without popping it and
    /// arms the SW-ID-fetched flag on success.
    pub fn fetch_sw_id(&mut self, manager: &mut PicosManager, now: Cycle) -> Option<u64> {
        let result = manager.front_ready(self.core, now).map(|e| e.sw_id);
        if result.is_some() {
            self.sw_id_fetched = true;
        }
        self.stats.record(TaskSchedOp::FetchSwId, result.is_some());
        result
    }

    /// *Fetch Picos ID* — pops the front of the queue, but only if a previous *Fetch SW ID*
    /// succeeded for it; otherwise returns `None` and changes nothing.
    pub fn fetch_picos_id(&mut self, manager: &mut PicosManager, now: Cycle) -> Option<u32> {
        if !self.sw_id_fetched {
            self.stats.record(TaskSchedOp::FetchPicosId, false);
            return None;
        }
        let result = manager.pop_ready(self.core, now).map(|e| e.picos_id);
        if result.is_some() {
            self.sw_id_fetched = false;
        }
        self.stats.record(TaskSchedOp::FetchPicosId, result.is_some());
        result
    }

    /// *Retire Task* — blocking; returns the cycles the core is held.
    pub fn retire_task(&mut self, manager: &mut PicosManager, picos_id: u32, now: Cycle) -> Cycle {
        self.stats.record(TaskSchedOp::RetireTask, true);
        manager.retire(self.core, picos_id, now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::ManagerConfig;
    use tis_picos::{encode_nonzero_prefix, PicosConfig, SubmittedTask};

    fn setup() -> (PicosManager, PicosDelegate, PicosDelegate) {
        let manager = PicosManager::new(2, ManagerConfig::default(), PicosConfig::default());
        (manager, PicosDelegate::new(0), PicosDelegate::new(1))
    }

    fn submit_simple(manager: &mut PicosManager, delegate: &mut PicosDelegate, sw_id: u64, now: u64) {
        let pkts = encode_nonzero_prefix(&SubmittedTask::new(sw_id, vec![]));
        assert!(delegate.submission_request(manager, pkts.len() as u32, now));
        for chunk in pkts.chunks(3) {
            assert!(delegate.submit_packets(manager, chunk, now));
        }
    }

    #[test]
    fn fetch_picos_id_requires_prior_sw_id_fetch() {
        let (mut manager, mut d0, mut d1) = setup();
        submit_simple(&mut manager, &mut d0, 77, 0);
        assert!(d1.ready_task_request(&mut manager, 10));
        let mut now = 10;
        while manager.front_ready(1, now).is_none() {
            now += 5;
            assert!(now < 10_000);
        }
        // Without fetching the SW ID first, the Picos ID fetch must fail and not pop anything.
        assert_eq!(d1.fetch_picos_id(&mut manager, now), None);
        assert_eq!(d1.fetch_sw_id(&mut manager, now), Some(77));
        let pid = d1.fetch_picos_id(&mut manager, now).expect("armed by the SW ID fetch");
        // The entry was popped: a second pair of fetches fails until new work arrives.
        assert_eq!(d1.fetch_sw_id(&mut manager, now), None);
        assert_eq!(d1.fetch_picos_id(&mut manager, now), None);
        d1.retire_task(&mut manager, pid, now + 50);
        assert_eq!(manager.tasks_in_flight(), 0);
    }

    #[test]
    fn sw_id_fetch_does_not_pop_the_queue() {
        let (mut manager, mut d0, _d1) = setup();
        submit_simple(&mut manager, &mut d0, 5, 0);
        assert!(d0.ready_task_request(&mut manager, 5));
        let mut now = 5;
        while d0.fetch_sw_id(&mut manager, now).is_none() {
            now += 5;
            assert!(now < 10_000);
        }
        // Fetching the SW ID again still sees the same task: the entry is only consumed by
        // Fetch Picos ID.
        assert_eq!(d0.fetch_sw_id(&mut manager, now), Some(5));
        assert!(d0.fetch_picos_id(&mut manager, now).is_some());
    }

    #[test]
    fn stats_count_failures() {
        let (mut manager, mut d0, _d1) = setup();
        assert_eq!(d0.fetch_sw_id(&mut manager, 0), None);
        assert_eq!(d0.fetch_picos_id(&mut manager, 0), None);
        assert_eq!(d0.stats().total_issued(), 2);
        assert_eq!(d0.stats().total_failed(), 2);
        submit_simple(&mut manager, &mut d0, 1, 10);
        assert!(d0.stats().total_issued() > 2);
    }
}
