//! Phentos — the fly-weight Task Scheduling runtime of Section V-B.
//!
//! Phentos was written from scratch to squeeze every cycle out of the tightly-integrated
//! hardware. Its design goals, and how this model realises each of them:
//!
//! 1. **No non-IO syscalls** — the agents below never call [`CoreCtx::syscall`]; waiting is done
//!    with bounded spinning.
//! 2. **Few cache-line invalidations per submission** — task metadata lives in a *Task Metadata
//!    Array* whose elements are exactly one or two cache lines (64 B for up to 7 dependences,
//!    128 B for up to 15), so a submission writes one or two lines and a fetch reads them back.
//! 3. **Few cache-line moves per work fetch** — ready-task identity travels through the RoCC
//!    fabric (registers), not memory; only the metadata element is read.
//! 4. **Inlinable API** — modelled as plain function-call costs (no virtual dispatch).
//! 5. **Minimal writes to shared atomics** — each core keeps a *private* retirement counter and
//!    only folds it into the single shared atomic counter after a number of failed work fetches;
//!    the thread waiting in `taskwait` polls that counter only every few tens of cycles.
//! 6. **No false sharing** — metadata elements are cache-line aligned and the shared counter and
//!    done flag live on their own lines.
//!
//! The only simulated-memory data structures are therefore the metadata array, the shared
//! retirement counter and the done flag; everything else is per-core state.

use tis_machine::fabric::{FabricOutcome, SchedulerFabric};
use tis_machine::{CoreCtx, CoreStatus, RuntimeSystem};
use tis_obs::TaskStage;
use tis_picos::encode_prefix_into;
use tis_sim::Cycle;
use tis_taskmodel::{
    ExecRecord, MaterializedSource, ProgramOp, SourcePoll, TaskProgram, TaskSource, TaskSpec,
};

/// Base simulated address of the Task Metadata Array.
const META_BASE: u64 = 0x9000_0000;
/// Simulated address of the single shared retirement counter (its own cache line).
const SHARED_RETIRE_COUNTER: u64 = 0x9F00_0000;
/// Simulated address of the program-done flag (its own cache line).
const DONE_FLAG: u64 = 0x9F00_0040;

/// Tuning knobs of the Phentos runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhentosConfig {
    /// Number of elements in the Task Metadata Array. Must exceed the number of tasks the
    /// hardware can keep in flight so that slot reuse (sw_id modulo slots) never collides with a
    /// live task.
    pub metadata_slots: usize,
    /// Cycles between two consecutive polls of the shared retirement counter while the main
    /// thread sits in `taskwait` (the paper uses 10–100 depending on the taskwait flavour).
    pub taskwait_poll_interval: Cycle,
    /// Number of consecutive failed work fetches after which a worker folds its private
    /// retirement counter into the shared atomic counter.
    pub flush_after_failures: u32,
    /// Cycles a worker backs off after a failed work fetch before polling again.
    pub worker_backoff: Cycle,
    /// Ablation switch: update the shared retirement counter after **every** retirement instead
    /// of batching through the per-core private counters (design goal 5 disabled). The
    /// `ablation_retirement_counters` bench uses this to quantify the cache-bouncing the private
    /// counters avoid.
    pub eager_shared_counter: bool,
}

impl Default for PhentosConfig {
    fn default() -> Self {
        PhentosConfig {
            metadata_slots: 512,
            taskwait_poll_interval: 50,
            flush_after_failures: 4,
            worker_backoff: 40,
            eager_shared_counter: false,
        }
    }
}

#[derive(Debug, Clone, Default)]
struct WorkerState {
    /// Retirements not yet folded into the shared counter.
    private_retired: u64,
    /// Failed fetches since the last flush.
    failures_since_flush: u32,
    /// Ready-task requests issued but not yet answered by a successful Fetch Picos ID.
    outstanding_requests: u32,
    /// The worker observed the done flag and terminated.
    finished: bool,
}

/// The Phentos runtime plugged into the machine engine.
#[derive(Debug)]
pub struct Phentos {
    cfg: PhentosConfig,
    /// Where main-thread ops come from: a [`MaterializedSource`] for built programs, or a true
    /// streaming source holding only `O(window)` descriptors for million-task runs.
    source: Box<dyn TaskSource>,
    /// A pulled-but-not-yet-completed op. Sources consume ops on poll, so a submission that the
    /// saturated hardware rejects parks here and is retried — reproducing the old
    /// cursor-does-not-advance semantics exactly.
    pending: Option<ProgramOp>,
    /// The source answered [`SourcePoll::Done`]; only the final barrier remains.
    source_done: bool,
    element_bytes: u64,
    submitted: u64,
    /// Ground truth of the shared retirement counter's value in simulated memory.
    shared_retired: u64,
    total_retired: u64,
    done: bool,
    workers: Vec<WorkerState>,
    records: Vec<ExecRecord>,
    collect_records: bool,
    name: String,
    /// Scratch buffer for descriptor packets, reused across submissions.
    packet_scratch: Vec<u32>,
}

impl Phentos {
    /// Instantiates Phentos for a program on a machine with `cores` cores.
    ///
    /// # Panics
    ///
    /// Panics if the program fails validation (a workload-generator bug).
    pub fn new(program: &TaskProgram, cores: usize, cfg: PhentosConfig) -> Self {
        program.validate().expect("program must satisfy the Picos descriptor constraints");
        Phentos::from_source(Box::new(MaterializedSource::new(program)), cores, cfg)
    }

    /// Instantiates Phentos over a streaming [`TaskSource`]: descriptors are pulled on demand
    /// and freed on retire, so memory stays `O(window)` no matter how many tasks the source
    /// streams. Driving a [`MaterializedSource`] through this constructor is byte-identical to
    /// [`Phentos::new`] on the underlying program.
    pub fn from_source(source: Box<dyn TaskSource>, cores: usize, cfg: PhentosConfig) -> Self {
        // Section V-B: one cache line is enough for up to 7 dependences, two for up to 15. A
        // pre-processor macro picks the size per application; we pick it per program, from the
        // source's declared bound (a stream cannot be scanned up front).
        let element_bytes = if source.max_deps() <= 7 { 64 } else { 128 };
        let name = format!("phentos({})", source.name());
        Phentos {
            cfg,
            source,
            pending: None,
            source_done: false,
            element_bytes,
            submitted: 0,
            shared_retired: 0,
            total_retired: 0,
            done: false,
            workers: vec![WorkerState::default(); cores],
            records: Vec::new(),
            collect_records: true,
            name,
            packet_scratch: Vec::new(),
        }
    }

    /// Disables per-task [`ExecRecord`] collection. Records are `O(tasks)` host memory — the
    /// one thing a bounded-window streamed run cannot afford — so million-task cells switch
    /// them off; every differential and validation path keeps the default (on).
    pub fn set_collect_records(&mut self, on: bool) {
        self.collect_records = on;
    }

    /// Size in bytes of one Task Metadata Array element for this program (64 or 128).
    pub fn metadata_element_bytes(&self) -> u64 {
        self.element_bytes
    }

    fn meta_addr(&self, sw_id: u64) -> u64 {
        META_BASE + (sw_id % self.cfg.metadata_slots as u64) * self.element_bytes
    }

    /// Worker-side fast path: request / fetch / execute / retire one task.
    /// Returns `true` if a task was executed.
    fn try_execute_one(&mut self, ctx: &mut CoreCtx<'_>, fabric: &mut dyn SchedulerFabric) -> bool {
        let core = ctx.core();
        if self.workers[core].outstanding_requests == 0 {
            let (lat, out) = fabric.ready_task_request(core, ctx.now());
            ctx.spend(lat);
            if out.is_success() {
                self.workers[core].outstanding_requests += 1;
            }
        }
        let (lat, out) = fabric.fetch_sw_id(core, ctx.now());
        ctx.spend(lat);
        let FabricOutcome::Success(sw_id) = out else { return false };
        let (lat, out) = fabric.fetch_picos_id(core, ctx.now());
        ctx.spend(lat);
        let FabricOutcome::Success(picos_id) = out else { return false };
        ctx.observe_task(TaskStage::Dispatched, sw_id);
        self.workers[core].outstanding_requests =
            self.workers[core].outstanding_requests.saturating_sub(1);

        // Read the task metadata element (one or two cache lines, written by the submitter).
        ctx.read(self.meta_addr(sw_id), self.element_bytes);
        let spec = self.source.spec(sw_id).clone();
        let start = ctx.now();
        ctx.execute_task_payload(sw_id, spec.payload);
        let end = ctx.now();
        if self.collect_records {
            self.records.push(ExecRecord { task: spec.id, core, start, end });
        }

        let lat = fabric.retire_task(core, picos_id, ctx.now());
        ctx.spend(lat);
        ctx.observe_task(TaskStage::Retired, sw_id);
        self.source.retire_at(sw_id, ctx.now());
        self.workers[core].private_retired += 1;
        self.workers[core].failures_since_flush = 0;
        self.total_retired += 1;
        if self.cfg.eager_shared_counter {
            self.flush_private(ctx);
        }
        true
    }

    /// Folds a core's private retirement counter into the shared atomic counter.
    fn flush_private(&mut self, ctx: &mut CoreCtx<'_>) {
        let core = ctx.core();
        if self.workers[core].private_retired == 0 {
            return;
        }
        ctx.atomic(SHARED_RETIRE_COUNTER);
        self.shared_retired += self.workers[core].private_retired;
        self.workers[core].private_retired = 0;
        self.workers[core].failures_since_flush = 0;
    }

    /// Submits the task at the program cursor. Returns `true` if the submission completed.
    fn submit_current(&mut self, ctx: &mut CoreCtx<'_>, fabric: &mut dyn SchedulerFabric, spec: &TaskSpec) -> bool {
        let core = ctx.core();
        ctx.observe_task(TaskStage::Submitted, spec.id.raw());
        // Fill the metadata element (function arguments, payload description).
        ctx.call();
        ctx.write(self.meta_addr(spec.id.raw()), self.element_bytes);
        encode_prefix_into(spec.id.raw(), &spec.deps, &mut self.packet_scratch);
        let (lat, out) = fabric.submission_request(core, self.packet_scratch.len() as u32, ctx.now());
        ctx.spend(lat);
        if !out.is_success() {
            return false;
        }
        // Submit Three Packets: the non-zero packet count is always a multiple of three.
        for chunk in self.packet_scratch.chunks(3) {
            let (lat, out) = fabric.submit_packets(core, chunk, ctx.now());
            ctx.spend(lat);
            debug_assert!(out.is_success(), "packets following an accepted request are always accepted");
        }
        self.submitted += 1;
        true
    }

    fn step_main(&mut self, ctx: &mut CoreCtx<'_>, fabric: &mut dyn SchedulerFabric) -> CoreStatus {
        if self.done {
            return CoreStatus::Finished;
        }
        // Pull the next op on demand. A blocked source (in-flight window full) is handled like
        // saturated hardware: execute resident work so retirements free the window. Streamed
        // dependences only point backwards, so the in-flight set always holds runnable work and
        // this cannot deadlock.
        if self.pending.is_none() && !self.source_done {
            // Time-aware sources (the multi-tenant merger) gate spawn release on the polling
            // core's clock; plain sources ignore this (default no-op).
            self.source.advance_to(ctx.now());
            match self.source.poll() {
                SourcePoll::Op(op) => self.pending = Some(op),
                SourcePoll::Blocked => {
                    if !self.try_execute_one(ctx, fabric) {
                        ctx.spin_backoff();
                    }
                    return CoreStatus::Progressed;
                }
                SourcePoll::Done => self.source_done = true,
            }
        }
        match self.pending.clone() {
            Some(ProgramOp::Spawn(spec)) => {
                if self.submit_current(ctx, fabric, &spec) {
                    self.pending = None;
                } else {
                    // Non-blocking submission failed (hardware saturated): do useful work
                    // instead of stalling — the deadlock-avoidance pattern of Section IV-C.
                    if !self.try_execute_one(ctx, fabric) {
                        ctx.spin_backoff();
                    }
                }
                CoreStatus::Progressed
            }
            Some(ProgramOp::TaskWait) => {
                let target = self.submitted;
                self.flush_private(ctx);
                ctx.read(SHARED_RETIRE_COUNTER, 8);
                if self.shared_retired >= target {
                    self.pending = None;
                    return CoreStatus::Progressed;
                }
                if self.try_execute_one(ctx, fabric) {
                    return CoreStatus::Progressed;
                }
                CoreStatus::Waiting { until: ctx.now() + self.cfg.taskwait_poll_interval }
            }
            None => {
                // Implicit final barrier, then publish the done flag.
                let target = self.submitted;
                self.flush_private(ctx);
                ctx.read(SHARED_RETIRE_COUNTER, 8);
                if self.shared_retired >= target {
                    ctx.write(DONE_FLAG, 8);
                    self.done = true;
                    self.workers[ctx.core()].finished = true;
                    return CoreStatus::Progressed;
                }
                if self.try_execute_one(ctx, fabric) {
                    return CoreStatus::Progressed;
                }
                CoreStatus::Waiting { until: ctx.now() + self.cfg.taskwait_poll_interval }
            }
        }
    }

    fn step_worker(&mut self, ctx: &mut CoreCtx<'_>, fabric: &mut dyn SchedulerFabric) -> CoreStatus {
        let core = ctx.core();
        if self.workers[core].finished {
            return CoreStatus::Finished;
        }
        if self.try_execute_one(ctx, fabric) {
            return CoreStatus::Progressed;
        }
        self.workers[core].failures_since_flush += 1;
        if self.workers[core].private_retired > 0
            && self.workers[core].failures_since_flush >= self.cfg.flush_after_failures
        {
            self.flush_private(ctx);
            return CoreStatus::Progressed;
        }
        if self.done {
            // Observe the done flag (a real read of the shared line) and terminate.
            ctx.read(DONE_FLAG, 8);
            self.workers[core].finished = true;
            return CoreStatus::Finished;
        }
        CoreStatus::Waiting { until: ctx.now() + self.cfg.worker_backoff }
    }
}

impl RuntimeSystem for Phentos {
    fn name(&self) -> &'static str {
        "phentos"
    }

    fn step_core(&mut self, ctx: &mut CoreCtx<'_>, fabric: &mut dyn SchedulerFabric) -> CoreStatus {
        if ctx.core() == 0 {
            self.step_main(ctx, fabric)
        } else {
            self.step_worker(ctx, fabric)
        }
    }

    fn is_finished(&self) -> bool {
        self.done
    }

    fn exec_records(&self) -> Vec<ExecRecord> {
        self.records.clone()
    }

    fn tasks_retired(&self) -> u64 {
        self.total_retired
    }

    fn peak_resident_tasks(&self) -> u64 {
        self.source.peak_resident() as u64
    }

    fn tenant_reports(&self) -> Vec<tis_taskmodel::TenantReport> {
        self.source.tenant_reports()
    }
}

impl Phentos {
    /// Descriptive name including the program (useful in multi-run reports).
    pub fn qualified_name(&self) -> &str {
        &self.name
    }

    /// Mutable access to the task source, for post-run recovery of source-side state (the
    /// multi-tenant harness downcasts it to take the tenant assignment).
    pub fn source_mut(&mut self) -> &mut dyn TaskSource {
        self.source.as_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::TisFabric;
    use tis_machine::{run_machine, MachineConfig};
    use tis_taskmodel::{Dependence, Payload, ProgramBuilder};

    fn run(program: &TaskProgram, cores: usize) -> tis_machine::ExecutionReport {
        let cfg = MachineConfig::rocket_with_cores(cores);
        let mut runtime = Phentos::new(program, cores, PhentosConfig::default());
        let mut fabric = TisFabric::with_cores(cores);
        run_machine(&cfg, &mut runtime, &mut fabric).expect("phentos run completes")
    }

    #[test]
    fn independent_tasks_run_and_validate() {
        let mut b = ProgramBuilder::new("indep");
        for i in 0..20u64 {
            b.spawn(Payload::compute(2_000), vec![Dependence::write(0x1_0000 + i * 64)]);
        }
        b.taskwait();
        let p = b.build();
        let report = run(&p, 4);
        assert_eq!(report.tasks_retired, 20);
        assert_eq!(report.records.len(), 20);
        report.validate_against(&p).expect("dependences and core exclusivity hold");
    }

    #[test]
    fn dependent_chain_executes_in_order() {
        let mut b = ProgramBuilder::new("chain");
        for _ in 0..10 {
            b.spawn(Payload::compute(500), vec![Dependence::read_write(0x2_0000)]);
        }
        b.taskwait();
        let p = b.build();
        let report = run(&p, 4);
        assert_eq!(report.tasks_retired, 10);
        report.validate_against(&p).expect("chain order must hold");
        // A pure chain cannot go faster than the sum of its payloads.
        assert!(report.total_cycles >= 10 * 500);
    }

    #[test]
    fn parallel_speedup_on_coarse_tasks() {
        let mut b = ProgramBuilder::new("coarse");
        for i in 0..64u64 {
            b.spawn(Payload::compute(100_000), vec![Dependence::write(0x3_0000 + i * 64)]);
        }
        b.taskwait();
        let p = b.build();
        let serial = p.serial_cycles(16.0, 8);
        let report = run(&p, 8);
        let speedup = report.speedup_over(serial);
        assert!(speedup > 5.0, "coarse independent tasks on 8 cores should scale well, got {speedup:.2}");
        report.validate_against(&p).unwrap();
    }

    #[test]
    fn fine_grained_overhead_is_hundreds_of_cycles() {
        // Task-Free-style microbenchmark on a single core: total cycles per task is the
        // lifetime scheduling overhead, which must land in the few-hundred-cycle range of
        // Figure 7 (Phentos row), far below the ~12k of Nanos-RV.
        let mut b = ProgramBuilder::new("taskfree");
        for i in 0..200u64 {
            b.spawn(Payload::empty(), vec![Dependence::write(0x5_0000 + i * 64)]);
        }
        b.taskwait();
        let p = b.build();
        let report = run(&p, 1);
        let per_task = report.mean_cycles_per_task();
        assert!(
            per_task > 50.0 && per_task < 1_500.0,
            "phentos lifetime overhead should be hundreds of cycles, got {per_task:.0}"
        );
    }

    #[test]
    fn taskwait_phases_are_respected() {
        let mut b = ProgramBuilder::new("phases");
        for i in 0..6u64 {
            b.spawn(Payload::compute(1_000), vec![Dependence::write(0x6_0000 + i * 64)]);
        }
        b.taskwait();
        for i in 0..6u64 {
            b.spawn(Payload::compute(1_000), vec![Dependence::write(0x7_0000 + i * 64)]);
        }
        b.taskwait();
        let p = b.build();
        let report = run(&p, 4);
        assert_eq!(report.tasks_retired, 12);
        report.validate_against(&p).expect("barrier must separate the two phases");
    }

    #[test]
    fn metadata_element_size_follows_dependence_count() {
        let mut small = ProgramBuilder::new("small");
        small.spawn(Payload::empty(), (0..7u64).map(|i| Dependence::write(i * 64)).collect());
        let mut big = ProgramBuilder::new("big");
        big.spawn(Payload::empty(), (0..15u64).map(|i| Dependence::write(i * 64)).collect());
        assert_eq!(Phentos::new(&small.build(), 2, PhentosConfig::default()).metadata_element_bytes(), 64);
        assert_eq!(Phentos::new(&big.build(), 2, PhentosConfig::default()).metadata_element_bytes(), 128);
    }

    #[test]
    fn main_thread_executes_tasks_when_hardware_saturates() {
        // More independent tasks than the Picos task memory can hold: the main thread's
        // submissions start failing and it must pick up work itself (Section IV-C pattern).
        use crate::fabric::TisConfig;
        use tis_picos::{PicosConfig, TrackerConfig};
        let mut b = ProgramBuilder::new("saturate");
        for i in 0..40u64 {
            b.spawn(Payload::compute(200), vec![Dependence::write(0x8_0000 + i * 64)]);
        }
        b.taskwait();
        let p = b.build();
        let cores = 1usize; // only the main thread exists, so it must execute everything
        let cfg = MachineConfig::rocket_with_cores(cores);
        let tis = TisConfig {
            picos: PicosConfig {
                tracker: TrackerConfig { task_memory_entries: 4, address_table_entries: 64 },
                ..PicosConfig::default()
            },
            ..TisConfig::default()
        };
        let mut runtime = Phentos::new(&p, cores, PhentosConfig::default());
        let mut fabric = TisFabric::new(cores, tis);
        let report = run_machine(&cfg, &mut runtime, &mut fabric).expect("no deadlock despite saturation");
        assert_eq!(report.tasks_retired, 40);
        report.validate_against(&p).unwrap();
    }
}
