//! FPGA resource model behind Table II.
//!
//! The paper reports the resource usage of the synthesized prototype in "FPGA cells" and makes
//! one quantitative claim: the entire task-scheduling subsystem (Picos + Picos Manager + the
//! per-core Delegates) occupies **less than 2 %** of the octa-core SoC. We cannot synthesize RTL
//! from Rust, so this module is a *model*: per-module cell counts taken from Table II for the
//! paper's configuration, plus a scaling rule over the core count so the ablation harness can ask
//! what the fraction would look like for other machines. The `table2_resources` bench prints the
//! paper's table next to the model's output.

/// One row of the resource-usage breakdown.
#[derive(Debug, Clone, PartialEq)]
pub struct ResourceRow {
    /// Module name as it appears in Table II.
    pub module: &'static str,
    /// Estimated FPGA cells used by the module.
    pub cells: u64,
    /// Fraction of the whole system.
    pub fraction: f64,
    /// Short description from Table II.
    pub description: &'static str,
}

/// Per-module cell counts of the paper's prototype (Table II), used as calibration anchors.
mod paper {
    /// Whole octa-core system.
    pub const TOP: u64 = 384_000;
    /// One core including FPU and L1 caches.
    pub const CORE: u64 = 44_000;
    /// Floating-point unit of one core.
    pub const FPU: u64 = 18_000;
    /// Data cache of one core.
    pub const DCACHE: u64 = 6_000;
    /// Instruction cache of one core.
    pub const ICACHE: u64 = 1_000;
    /// Picos + Picos Manager + all Delegates.
    pub const SSYSTEM: u64 = 7_000;
}

/// Resource-usage report for a machine with a given core count.
#[derive(Debug, Clone, PartialEq)]
pub struct ResourceReport {
    cores: usize,
    rows: Vec<ResourceRow>,
}

impl ResourceReport {
    /// Builds the report for the paper's eight-core prototype.
    pub fn paper_prototype() -> Self {
        ResourceReport::for_cores(8)
    }

    /// Builds the report for an `cores`-core instantiation of the same design.
    ///
    /// Scaling rule: each core contributes a fixed cell count; the scheduling subsystem is one
    /// shared Picos + Manager plus a small per-core Delegate; the remainder of the paper's `top`
    /// figure (interconnect, DDR controller, peripherals) is treated as fixed infrastructure.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero.
    pub fn for_cores(cores: usize) -> Self {
        assert!(cores > 0, "a system needs at least one core");
        let infra = paper::TOP - 8 * paper::CORE - paper::SSYSTEM;
        // Split the paper's scheduling subsystem into a shared part (Picos + Manager) and a
        // per-core Delegate part; the Delegates are tiny compared to Picos itself.
        let delegate_per_core = 150u64;
        let shared_ssystem = paper::SSYSTEM - 8 * delegate_per_core;
        let ssystem = shared_ssystem + delegate_per_core * cores as u64;
        let top = infra + paper::CORE * cores as u64 + ssystem;
        let f = |cells: u64| cells as f64 / top as f64;
        let rows = vec![
            ResourceRow { module: "top", cells: top, fraction: 1.0, description: "Whole system" },
            ResourceRow {
                module: "Core",
                cells: paper::CORE,
                fraction: f(paper::CORE),
                description: "Core with FPU and L1$",
            },
            ResourceRow {
                module: "fpuOpt",
                cells: paper::FPU,
                fraction: f(paper::FPU),
                description: "Floating-point unit",
            },
            ResourceRow {
                module: "dcache",
                cells: paper::DCACHE,
                fraction: f(paper::DCACHE),
                description: "D-cache of a single core",
            },
            ResourceRow {
                module: "icache",
                cells: paper::ICACHE,
                fraction: f(paper::ICACHE),
                description: "I-cache of a single core",
            },
            ResourceRow {
                module: "SSystem",
                cells: ssystem,
                fraction: f(ssystem),
                description: "Picos, Picos Manager, and Delegates",
            },
        ];
        ResourceReport { cores, rows }
    }

    /// Number of cores the report was built for.
    pub fn cores(&self) -> usize {
        self.cores
    }

    /// The rows of the table.
    pub fn rows(&self) -> &[ResourceRow] {
        &self.rows
    }

    /// Fraction of the whole system occupied by the task-scheduling subsystem.
    pub fn scheduling_fraction(&self) -> f64 {
        self.rows
            .iter()
            .find(|r| r.module == "SSystem")
            .map(|r| r.fraction)
            .expect("SSystem row always present")
    }

    /// Renders the table in the same format as Table II.
    pub fn render(&self) -> String {
        let mut out = String::from("Module     Usage     Fraction   Description\n");
        for r in &self.rows {
            out.push_str(&format!(
                "{:<10} {:>6}K   {:>7.2}%   {}\n",
                r.module,
                r.cells / 1000,
                r.fraction * 100.0,
                r.description
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_prototype_matches_table_2_totals() {
        let r = ResourceReport::paper_prototype();
        let top = &r.rows()[0];
        assert_eq!(top.cells, 384_000);
        assert_eq!(r.cores(), 8);
        let core = r.rows().iter().find(|x| x.module == "Core").unwrap();
        assert!((core.fraction - 0.1156).abs() < 0.005, "core is ~11.56% of the system");
    }

    #[test]
    fn scheduling_subsystem_below_two_percent() {
        // The paper's headline resource claim.
        let r = ResourceReport::paper_prototype();
        assert!(r.scheduling_fraction() < 0.02);
        assert!(r.scheduling_fraction() > 0.005, "but it is not free either");
    }

    #[test]
    fn fraction_shrinks_with_more_cores() {
        let f4 = ResourceReport::for_cores(4).scheduling_fraction();
        let f8 = ResourceReport::for_cores(8).scheduling_fraction();
        let f16 = ResourceReport::for_cores(16).scheduling_fraction();
        assert!(f16 < f8, "a bigger SoC amortises the shared Picos better");
        assert!(f8 < f4 || (f8 - f4).abs() < 1e-3);
    }

    #[test]
    fn render_contains_all_modules() {
        let s = ResourceReport::paper_prototype().render();
        for m in ["top", "Core", "fpuOpt", "dcache", "icache", "SSystem"] {
            assert!(s.contains(m), "missing row {m}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_panics() {
        ResourceReport::for_cores(0);
    }
}
