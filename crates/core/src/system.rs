//! A small facade for running task programs on the tightly-integrated system.
//!
//! [`TisSystem`] bundles a machine configuration, the scheduling-fabric configuration and the
//! Phentos runtime configuration behind a builder-style API, so examples and downstream users
//! can go from a [`TaskProgram`] to an [`ExecutionReport`] in two lines. The Nanos runtime
//! family lives in the `tis-nanos` crate (it is an adaptation of pre-existing software, not part
//! of the contribution) and is driven the same way through
//! [`tis_machine::run_machine`].

use tis_machine::{run_machine, EngineError, ExecutionReport, MachineConfig};
use tis_taskmodel::TaskProgram;

use crate::fabric::{TisConfig, TisFabric};
use crate::phentos::{Phentos, PhentosConfig};

/// Builder/facade for the tightly-integrated scheduling system.
#[derive(Debug, Clone, PartialEq)]
pub struct TisSystem {
    machine: MachineConfig,
    tis: TisConfig,
    phentos: PhentosConfig,
}

impl TisSystem {
    /// The paper's eight-core prototype with default Picos and Phentos parameters.
    pub fn eight_core() -> Self {
        TisSystem {
            machine: MachineConfig::rocket_octacore(),
            tis: TisConfig::default(),
            phentos: PhentosConfig::default(),
        }
    }

    /// Same system with a different number of cores.
    pub fn with_cores(cores: usize) -> Self {
        TisSystem { machine: MachineConfig::rocket_with_cores(cores), ..Self::eight_core() }
    }

    /// Replaces the machine configuration.
    pub fn machine(mut self, machine: MachineConfig) -> Self {
        self.machine = machine;
        self
    }

    /// Replaces the scheduling-fabric configuration.
    pub fn fabric_config(mut self, tis: TisConfig) -> Self {
        self.tis = tis;
        self
    }

    /// Replaces the Phentos runtime configuration.
    pub fn phentos_config(mut self, phentos: PhentosConfig) -> Self {
        self.phentos = phentos;
        self
    }

    /// The machine configuration currently selected.
    pub fn machine_config(&self) -> &MachineConfig {
        &self.machine
    }

    /// Runs `program` under the Phentos runtime on the tightly-integrated fabric.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`EngineError`] if the simulation deadlocks or exceeds its cycle
    /// cap.
    pub fn run_phentos(&self, program: &TaskProgram) -> Result<ExecutionReport, EngineError> {
        let cores = self.machine.cores;
        let mut runtime = Phentos::new(program, cores, self.phentos);
        let mut fabric = TisFabric::new(cores, self.tis);
        run_machine(&self.machine, &mut runtime, &mut fabric)
    }

    /// Serial-execution baseline for `program` on this machine (one core, plain function calls).
    pub fn serial_cycles(&self, program: &TaskProgram) -> u64 {
        program.serial_cycles(self.machine.dram_bytes_per_cycle, self.machine.costs.serial_call_overhead)
    }
}

impl Default for TisSystem {
    fn default() -> Self {
        TisSystem::eight_core()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tis_taskmodel::{Dependence, Payload, ProgramBuilder};

    fn sample_program(tasks: u64, cycles: u64) -> TaskProgram {
        let mut b = ProgramBuilder::new("facade");
        for i in 0..tasks {
            b.spawn(Payload::compute(cycles), vec![Dependence::write(0x10_000 + i * 64)]);
        }
        b.taskwait();
        b.build()
    }

    #[test]
    fn facade_runs_and_reports_speedup() {
        let sys = TisSystem::with_cores(4);
        let p = sample_program(32, 20_000);
        let report = sys.run_phentos(&p).unwrap();
        assert_eq!(report.tasks_retired, 32);
        let speedup = report.speedup_over(sys.serial_cycles(&p));
        assert!(speedup > 2.0, "4 cores on coarse tasks must beat serial, got {speedup:.2}");
        report.validate_against(&p).unwrap();
    }

    #[test]
    fn builder_setters_apply() {
        let sys = TisSystem::eight_core()
            .machine(MachineConfig::small_test())
            .phentos_config(PhentosConfig { worker_backoff: 10, ..PhentosConfig::default() });
        assert_eq!(sys.machine_config().cores, 2);
        let p = sample_program(4, 1_000);
        assert_eq!(sys.run_phentos(&p).unwrap().tasks_retired, 4);
    }

    #[test]
    fn default_is_eight_cores() {
        assert_eq!(TisSystem::default().machine_config().cores, 8);
    }
}
