//! **tis-core** — the paper's primary contribution: tightly-integrated task scheduling for a
//! RISC-V multi-core.
//!
//! The MICRO 2019 paper "Adding Tightly-Integrated Task Scheduling Acceleration to a RISC-V
//! Multi-core Processor" embeds the Picos hardware task-dependence manager *inside* a Rocket
//! Chip processor and exposes it to software through seven custom RoCC instructions (Table I),
//! eliminating the CPU↔FPGA communication that throttled earlier systems. This crate is the Rust
//! model of that contribution, layered on the substrates of the workspace:
//!
//! * [`rocc`] — the RoCC instruction format (Figure 1) and the Table-I instruction set;
//! * [`delegate`] — the per-core **Picos Delegate**: the RoCC accelerator stub that implements
//!   each custom instruction against the shared manager (Section IV-E);
//! * [`manager`] — **Picos Manager** (Section IV-F): the Submission Handler with its Guided
//!   Arbiter and Zero Padder, the Work-Fetch Arbiter, the Packet Encoder, the Round-Robin
//!   retirement arbiter, the per-core ready queues and the protocol-crossing glue around Picos;
//! * [`fabric`] — [`TisFabric`]: the above assembled into a
//!   [`SchedulerFabric`](tis_machine::SchedulerFabric) that cores drive with ~2-cycle
//!   instructions;
//! * [`phentos`] — the **Phentos** fly-weight runtime (Section V-B): no non-IO syscalls,
//!   cache-line-sized task metadata, private retirement counters with batched atomic updates,
//!   bounded spin polling;
//! * [`resources`] — the FPGA resource model behind Table II;
//! * [`system`] — a small facade for running a task program on the tightly-integrated system.
//!
//! # Quickstart
//!
//! ```
//! use tis_core::system::TisSystem;
//! use tis_taskmodel::{Dependence, Payload, ProgramBuilder};
//!
//! let mut b = ProgramBuilder::new("demo");
//! let buf = 0x8000_0000;
//! b.spawn(Payload::compute(5_000), vec![Dependence::write(buf)]);
//! b.spawn(Payload::compute(5_000), vec![Dependence::read(buf)]);
//! b.taskwait();
//! let program = b.build();
//!
//! let report = TisSystem::eight_core().run_phentos(&program).expect("simulation succeeds");
//! assert_eq!(report.tasks_retired, 2);
//! report.validate_against(&program).expect("dependences honoured");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod delegate;
pub mod fabric;
pub mod manager;
pub mod phentos;
pub mod resources;
pub mod rocc;
pub mod system;

pub use fabric::{TisConfig, TisFabric};
pub use phentos::{Phentos, PhentosConfig};
pub use resources::{ResourceReport, ResourceRow};
pub use rocc::{RoccInstruction, TaskSchedOp, CUSTOM0_OPCODE};
pub use system::TisSystem;
