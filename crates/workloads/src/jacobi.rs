//! Jacobi — blocked iterative Poisson solver (KaStORS).
//!
//! The KaStORS `jacobi` benchmark applies Jacobi sweeps to a grid, double-buffered between
//! `u_old` and `u_new`. The blocked task version spawns one task per block per sweep; a block
//! task reads its own block and its two neighbours from the previous sweep and writes its block
//! of the new buffer, producing a classic neighbour-dependence (stencil) task graph with WAR/RAW
//! edges across sweeps.
//!
//! Granularity model: updating one grid point is a handful of flops on the in-order core
//! (~12 cycles); a block moves `16 × elements` bytes between the two buffers.

use tis_taskmodel::{Dependence, Payload, ProgramBuilder, TaskProgram};

/// Cycles to update one grid point.
const CYCLES_PER_POINT: u64 = 12;
/// Bytes moved per grid point per sweep (read old + neighbours, write new).
const BYTES_PER_POINT: u64 = 16;
/// Number of Jacobi sweeps performed.
const SWEEPS: usize = 8;
/// Base addresses of the two buffers.
const U_OLD: u64 = 0xE000_0000;
const U_NEW: u64 = 0xE800_0000;

fn block_addr(buffer: u64, block: usize) -> u64 {
    buffer + (block as u64) * 0x100
}

/// Generates the jacobi program for a grid of `n` points partitioned into blocks of
/// `block_points` points, running a fixed number of sweeps (`SWEEPS`, currently 8).
///
/// # Panics
///
/// Panics if the parameters are degenerate (zero, or block larger than the grid).
pub fn jacobi(n: usize, block_points: usize) -> TaskProgram {
    assert!(n > 0 && block_points > 0 && block_points <= n, "degenerate jacobi input");
    let blocks = n / block_points;
    let mut b = ProgramBuilder::new(format!("jacobi N{n} B{block_points}"));
    for sweep in 0..SWEEPS {
        // Buffers swap every sweep.
        let (src, dst) = if sweep % 2 == 0 { (U_OLD, U_NEW) } else { (U_NEW, U_OLD) };
        for blk in 0..blocks {
            let mut deps = vec![Dependence::read(block_addr(src, blk)), Dependence::write(block_addr(dst, blk))];
            if blk > 0 {
                deps.push(Dependence::read(block_addr(src, blk - 1)));
            }
            if blk + 1 < blocks {
                deps.push(Dependence::read(block_addr(src, blk + 1)));
            }
            b.spawn(
                Payload::new(block_points as u64 * CYCLES_PER_POINT, block_points as u64 * BYTES_PER_POINT),
                deps,
            );
        }
    }
    b.taskwait();
    b.build()
}

/// The three jacobi inputs of Figure 9 (`N128 B1`, `N256 B1`, `N512 B1`).
///
/// The KaStORS input names refer to a 2-D grid of N×N points blocked by rows; one row of the
/// N-point-per-row grid is the unit of work here, so "B1" spawns one task per row per sweep with
/// a per-task granularity of roughly `N × 12` cycles — the very fine tasks that motivate the
/// paper.
pub fn paper_inputs() -> Vec<(String, TaskProgram)> {
    paper_inputs_scaled(1)
}

/// The three jacobi input labels of Figure 9, as `(label, n)` — the single source of truth for
/// the catalog's jacobi grid.
pub fn paper_input_sizes() -> Vec<(String, usize)> {
    [128usize, 256, 512].iter().map(|&n| (format!("N{n} B1"), n)).collect()
}

/// One Figure 9 jacobi input (`N{n} B1`: one task per row, rows of `n` points) with the row
/// count — the parallel dimension — multiplied by `scale`, keeping the per-task granularity
/// (row length `n`) unchanged. `scale = 1` is the paper's input; larger machines use larger
/// scales so every core still has work (see [`crate::catalog::paper_catalog_for_cores`]).
///
/// # Panics
///
/// Panics if `n` or `scale` is zero.
pub fn paper_input(n: usize, scale: usize) -> TaskProgram {
    assert!(n > 0 && scale > 0, "degenerate jacobi input");
    let rows = n * scale;
    let mut b = ProgramBuilder::new(format!("jacobi N{n} B1"));
    for sweep in 0..SWEEPS {
        let (src, dst) = if sweep % 2 == 0 { (U_OLD, U_NEW) } else { (U_NEW, U_OLD) };
        for row in 0..rows {
            let mut deps =
                vec![Dependence::read(block_addr(src, row)), Dependence::write(block_addr(dst, row))];
            if row > 0 {
                deps.push(Dependence::read(block_addr(src, row - 1)));
            }
            if row + 1 < rows {
                deps.push(Dependence::read(block_addr(src, row + 1)));
            }
            b.spawn(Payload::new(n as u64 * CYCLES_PER_POINT, n as u64 * BYTES_PER_POINT), deps);
        }
    }
    b.taskwait();
    b.build()
}

/// The Figure 9 jacobi inputs with the parallel dimension multiplied by `scale` (see
/// [`paper_input`]).
pub fn paper_inputs_scaled(scale: usize) -> Vec<(String, TaskProgram)> {
    paper_input_sizes().into_iter().map(|(label, n)| (label, paper_input(n, scale))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tis_taskmodel::TaskId;

    #[test]
    fn stencil_dependences_link_sweeps() {
        let p = jacobi(8, 2); // 4 blocks, 8 sweeps
        assert_eq!(p.task_count(), 4 * SWEEPS);
        let g = p.reference_graph();
        // A block task of sweep 1 depends on its own block task of sweep 0 (it writes what the
        // earlier task read — WAR — and reads what it wrote via the swapped buffer).
        assert!(g.has_edge(TaskId(0), TaskId(4)));
        // And on its neighbour from sweep 0.
        assert!(g.has_edge(TaskId(1), TaskId(4)));
        assert!(g.edge_count() > 0);
    }

    #[test]
    fn paper_inputs_are_three_fine_grained_ones() {
        let inputs = paper_inputs();
        assert_eq!(inputs.len(), 3);
        for (label, p) in &inputs {
            assert!(label.ends_with("B1"));
            p.validate().unwrap();
            let stats = p.stats(16.0);
            assert!(
                stats.mean_task_cycles < 10_000.0,
                "jacobi B1 tasks are fine-grained, got {}",
                stats.mean_task_cycles
            );
        }
        // Larger grids mean more and bigger tasks.
        assert!(inputs[2].1.task_count() > inputs[0].1.task_count());
    }

    #[test]
    fn sweeps_are_serialised_per_block() {
        let p = jacobi(4, 1);
        let g = p.reference_graph();
        let weights = vec![1.0; p.task_count()];
        let stats = g.stats(&weights);
        assert!(stats.critical_path_weight >= SWEEPS as f64, "each sweep depends on the previous");
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn block_larger_than_grid_panics() {
        jacobi(4, 8);
    }
}
