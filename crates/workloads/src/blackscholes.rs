//! Blackscholes — the Financial Analysis benchmark (parsec-ompss).
//!
//! The application prices a portfolio of European options by evaluating the closed-form
//! Black–Scholes formula once per option. The OmpSs version partitions the portfolio into blocks
//! of `block_size` options; each block becomes one task that reads the option parameters and
//! writes the block of prices — a highly data-parallel workload with no inter-task dependences.
//!
//! Granularity model: evaluating one option on an in-order, FPU-equipped Rocket core (several
//! `exp`/`log`/`sqrt` calls plus arithmetic) is a few hundred cycles; each option touches ~40
//! bytes of input and 8 bytes of output.

use tis_taskmodel::{Dependence, Payload, ProgramBuilder, TaskProgram};

/// Cycles to price one option (calls into softish-float `exp`/`log` on the in-order core).
const CYCLES_PER_OPTION: u64 = 320;
/// Bytes of memory traffic per option (parameters in, price out).
const BYTES_PER_OPTION: u64 = 48;
/// Base address of the option and price arrays.
const DATA_BASE: u64 = 0xD000_0000;

/// Generates the blackscholes program for `num_options` options priced in blocks of
/// `block_size`.
///
/// # Panics
///
/// Panics if either parameter is zero.
pub fn blackscholes(num_options: usize, block_size: usize) -> TaskProgram {
    assert!(num_options > 0 && block_size > 0, "degenerate blackscholes input");
    let label = if num_options.is_multiple_of(1024) {
        format!("blackscholes {}K B{}", num_options / 1024, block_size)
    } else {
        format!("blackscholes {num_options} B{block_size}")
    };
    let mut b = ProgramBuilder::new(label);
    let blocks = num_options.div_ceil(block_size);
    for blk in 0..blocks {
        let options_here = block_size.min(num_options - blk * block_size) as u64;
        let out_addr = DATA_BASE + (blk as u64) * block_size as u64 * 8;
        b.spawn(
            Payload::new(options_here * CYCLES_PER_OPTION, options_here * BYTES_PER_OPTION),
            vec![Dependence::write(out_addr)],
        );
    }
    b.taskwait();
    b.build()
}

/// The twelve blackscholes input labels of Figure 9, as `(label, num_options, block_size)` —
/// the single source of truth for the catalog's blackscholes grid.
pub fn paper_input_sizes() -> Vec<(String, usize, usize)> {
    let mut out = Vec::new();
    for &options in &[4 * 1024usize, 16 * 1024] {
        for &block in &[8usize, 16, 32, 64, 128, 256] {
            out.push((format!("{}K B{}", options / 1024, block), options, block));
        }
    }
    out
}

/// The twelve blackscholes inputs of Figure 9: 4 K and 16 K options, block sizes 8–256.
pub fn paper_inputs() -> Vec<(String, TaskProgram)> {
    paper_input_sizes()
        .into_iter()
        .map(|(label, options, block)| (label, blackscholes(options, block)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_count_matches_partitioning() {
        let p = blackscholes(4096, 8);
        assert_eq!(p.task_count(), 512);
        let p = blackscholes(4096, 256);
        assert_eq!(p.task_count(), 16);
        // Non-divisible case keeps every option.
        let p = blackscholes(100, 32);
        assert_eq!(p.task_count(), 4);
        let total: u64 = p.tasks().map(|t| t.payload.compute_cycles).sum();
        assert_eq!(total, 100 * CYCLES_PER_OPTION);
    }

    #[test]
    fn tasks_are_independent_and_granularity_scales_with_block() {
        let p = blackscholes(4096, 64);
        assert_eq!(p.reference_graph().edge_count(), 0);
        let small = blackscholes(4096, 8).stats(16.0).mean_task_cycles;
        let large = blackscholes(4096, 256).stats(16.0).mean_task_cycles;
        assert!((large / small - 32.0).abs() < 1.0, "granularity tracks the block size");
    }

    #[test]
    fn paper_inputs_are_twelve() {
        let inputs = paper_inputs();
        assert_eq!(inputs.len(), 12);
        assert!(inputs.iter().any(|(l, _)| l == "4K B8"));
        assert!(inputs.iter().any(|(l, _)| l == "16K B256"));
        for (_, p) in inputs {
            p.validate().unwrap();
        }
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn zero_options_panics() {
        blackscholes(0, 8);
    }
}
