//! stream-deps and stream-barr — memory-intensive micro-apps (ompss-ee).
//!
//! Both run the four STREAM kernels (copy, scale, add, triad) over blocked arrays for several
//! iterations. They differ in how kernels are ordered:
//!
//! * **stream-barr** separates consecutive kernels with a `taskwait` barrier;
//! * **stream-deps** instead annotates the per-block data dependences (copy(b) → scale(b) →
//!   add(b) → triad(b) → next iteration's copy(b)), letting blocks from different kernels
//!   overlap — the "complex scheme of data dependencies" the paper mentions.
//!
//! Tasks are memory-bound: a block of `elems` doubles moves `8·elems` bytes per array touched,
//! so the shared-DRAM-bandwidth model caps the achievable speedup well below the core count, as
//! in the paper.
//!
//! The paper labels the inputs `64`, `16x16`, `16x128`, `128x128`, `128x1024` and `4096x4096`;
//! they are interpreted as `blocks × kibi-elements-per-block` (the single-number input `64`
//! being 64 blocks of 1 Ki elements).

use tis_taskmodel::{Dependence, Payload, ProgramBuilder, TaskProgram};

/// Arrays a, b, c used by the STREAM kernels.
const ARRAY_A: u64 = 0x1_0000_0000;
const ARRAY_B: u64 = 0x1_4000_0000;
const ARRAY_C: u64 = 0x1_8000_0000;
/// Number of iterations of the four-kernel sequence.
const ITERATIONS: usize = 4;
/// Cycles of loads/stores/FP per element on the in-order core. At 80 MHz the DRAM is relatively
/// fast, so the kernels are only partially bandwidth-bound on the prototype — which is why the
/// paper still sees stream speedups around 5× on eight cores rather than a hard bandwidth wall.
const CYCLES_PER_ELEM: u64 = 4;

fn blk(array: u64, b: usize) -> u64 {
    array + (b as u64) * 0x1000
}

fn kernel_payload(elems: usize, arrays_touched: u64) -> Payload {
    Payload::new(elems as u64 * CYCLES_PER_ELEM, elems as u64 * 8 * arrays_touched)
}

/// Generates one of the two stream variants for `blocks` blocks of `elems` elements.
///
/// # Panics
///
/// Panics if `blocks` or `elems` is zero.
pub fn stream(blocks: usize, elems: usize, with_barriers: bool) -> TaskProgram {
    assert!(blocks > 0 && elems > 0, "degenerate stream input");
    let variant = if with_barriers { "stream-barr" } else { "stream-deps" };
    let mut b = ProgramBuilder::new(format!("{variant} {blocks}x{elems}"));
    for _ in 0..ITERATIONS {
        // copy: c = a
        for blk_i in 0..blocks {
            b.spawn(
                kernel_payload(elems, 2),
                vec![Dependence::read(blk(ARRAY_A, blk_i)), Dependence::write(blk(ARRAY_C, blk_i))],
            );
        }
        if with_barriers {
            b.taskwait();
        }
        // scale: b = k * c
        for blk_i in 0..blocks {
            b.spawn(
                kernel_payload(elems, 2),
                vec![Dependence::read(blk(ARRAY_C, blk_i)), Dependence::write(blk(ARRAY_B, blk_i))],
            );
        }
        if with_barriers {
            b.taskwait();
        }
        // add: c = a + b
        for blk_i in 0..blocks {
            b.spawn(
                kernel_payload(elems, 3),
                vec![
                    Dependence::read(blk(ARRAY_A, blk_i)),
                    Dependence::read(blk(ARRAY_B, blk_i)),
                    Dependence::write(blk(ARRAY_C, blk_i)),
                ],
            );
        }
        if with_barriers {
            b.taskwait();
        }
        // triad: a = b + k * c
        for blk_i in 0..blocks {
            b.spawn(
                kernel_payload(elems, 3),
                vec![
                    Dependence::read(blk(ARRAY_B, blk_i)),
                    Dependence::read(blk(ARRAY_C, blk_i)),
                    Dependence::write(blk(ARRAY_A, blk_i)),
                ],
            );
        }
        if with_barriers {
            b.taskwait();
        }
    }
    if !with_barriers {
        b.taskwait();
    }
    b.build()
}

/// The six input labels of Figure 9, as `(label, blocks, elements_per_block)`.
pub fn paper_input_sizes() -> Vec<(&'static str, usize, usize)> {
    vec![
        ("64", 64, 1024),
        ("16x16", 16, 16 * 1024),
        ("16x128", 16, 128 * 1024),
        ("128x128", 128, 128 * 1024 / 8),
        ("128x1024", 128, 1024 * 1024 / 64),
        ("4096x4096", 256, 64 * 1024),
    ]
}

/// The six stream-barr or stream-deps inputs of Figure 9.
pub fn paper_inputs(with_barriers: bool) -> Vec<(String, TaskProgram)> {
    paper_input_sizes()
        .into_iter()
        .map(|(label, blocks, elems)| (label.to_string(), stream(blocks, elems, with_barriers)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deps_variant_chains_kernels_per_block() {
        let p = stream(2, 100, false);
        assert_eq!(p.task_count(), 2 * 4 * ITERATIONS);
        assert_eq!(p.taskwait_count(), 1, "only the final taskwait");
        let g = p.reference_graph();
        // copy(block0) -> scale(block0): scale reads c which copy wrote.
        assert!(g.has_edge(tis_taskmodel::TaskId(0), tis_taskmodel::TaskId(2)));
        assert!(g.edge_count() > 0);
    }

    #[test]
    fn barr_variant_uses_barriers_instead_of_fine_deps() {
        let p = stream(2, 100, true);
        assert_eq!(p.taskwait_count(), 4 * ITERATIONS);
        let deps = stream(2, 100, false);
        assert!(p.reference_graph().stats(&vec![1.0; p.task_count()]).phases > 1);
        assert!(
            deps.reference_graph().edge_count() > p.reference_graph().edge_count() / 2,
            "the deps variant expresses ordering through edges rather than barriers"
        );
    }

    #[test]
    fn tasks_are_memory_intense() {
        let p = stream(16, 16 * 1024, false);
        let stats = p.stats(16.0);
        // Memory time (bytes / 16 B per cycle) is a significant fraction of the task time, so
        // the shared-bandwidth model visibly limits scaling.
        let mem_cycles = stats.total_memory_bytes / 16;
        assert!(mem_cycles * 5 > stats.total_compute_cycles, "memory time should be at least a fifth of compute");
        assert!(stats.total_memory_bytes > 10 * 1024 * 1024, "stream moves tens of megabytes");
    }

    #[test]
    fn paper_inputs_cover_six_sizes_each() {
        for barriers in [false, true] {
            let inputs = paper_inputs(barriers);
            assert_eq!(inputs.len(), 6);
            for (label, p) in &inputs {
                p.validate().unwrap_or_else(|e| panic!("{label}: {e}"));
                assert!(p.task_count() <= 8_192, "{label} must stay simulable");
            }
        }
        // Problem size grows across the catalog (the paper: performance increases with size).
        let sizes = paper_input_sizes();
        let first = sizes[0].1 * sizes[0].2;
        let last = sizes[5].1 * sizes[5].2;
        assert!(last > first);
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn zero_blocks_panics() {
        stream(0, 10, false);
    }
}
