//! Workload generators reproducing the paper's benchmark inputs (Section VI-A2).
//!
//! Each generator emits a [`TaskProgram`](tis_taskmodel::TaskProgram): the same dependence
//! structure, task counts and task granularities as the corresponding OmpSs application, with
//! task bodies abstracted to (compute cycles, memory bytes) payloads. Five macro-benchmarks and
//! two overhead microbenchmarks are provided:
//!
//! * [`blackscholes`] — data-parallel option pricing (Parsec/parsec-ompss), 12 inputs;
//! * [`jacobi`] — blocked 1-D Jacobi/Poisson sweeps with neighbour dependences (KaStORS), 3 inputs;
//! * [`sparselu`] — sparse blocked LU factorisation (KaStORS), 10 inputs;
//! * [`stream`] — the stream-deps / stream-barr memory-bandwidth micro-apps (ompss-ee), 12 inputs;
//! * [`microbench`] — Task-Free and Task-Chain, the lifetime-overhead probes of Figure 7;
//! * [`catalog`] — the full 37-workload evaluation set of Figure 9, with the paper's input
//!   labels.
//!
//! Block sizes and problem sizes follow the paper's labels; where the original input would
//! produce an intractable number of simulated tasks (sparseLU N128) the generator scales the
//! block count down while preserving the dependence structure and the per-task granularity, as
//! recorded in DESIGN.md.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blackscholes;
pub mod catalog;
pub mod jacobi;
pub mod microbench;
pub mod sparselu;
pub mod stream;

pub use catalog::{entry_for_cores, paper_catalog, paper_catalog_for_cores, WorkloadInstance};
pub use microbench::{task_chain, task_free};
