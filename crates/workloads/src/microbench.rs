//! Task-Free and Task-Chain: the lifetime-overhead microbenchmarks of Figure 7.
//!
//! Both spawn `n` tasks with **empty payloads**, so every cycle of the resulting execution is
//! scheduling overhead:
//!
//! * **Task-Free** generates independent tasks, each annotating `deps` distinct addresses —
//!   measuring the submission/dispatch/retirement cost with no inter-task ordering;
//! * **Task-Chain** makes every task `inout` the same addresses, forming a single dependence
//!   chain — additionally measuring the wake-up path from retirement to the successor becoming
//!   ready.
//!
//! The paper sweeps the number of monitored pointer parameters from 0 to 15; the harness uses
//! the 1- and 15-dependence points shown in Figure 7.

use tis_taskmodel::{Dependence, Payload, ProgramBuilder, TaskProgram, MAX_DEPENDENCES};

/// Base address of the dummy buffers the microbenchmark tasks annotate.
const BUFFER_BASE: u64 = 0xC000_0000;

/// Generates the Task-Free microbenchmark: `n` independent tasks with `deps` annotated
/// addresses each.
///
/// # Panics
///
/// Panics if `deps` exceeds the 15-dependence Picos limit.
pub fn task_free(n: usize, deps: usize) -> TaskProgram {
    assert!(deps <= MAX_DEPENDENCES, "at most {MAX_DEPENDENCES} dependences");
    let mut b = ProgramBuilder::new(format!("task-free ({deps} dep)"));
    for i in 0..n {
        let annotations = (0..deps)
            .map(|d| Dependence::read_write(BUFFER_BASE + ((i * MAX_DEPENDENCES + d) as u64) * 64))
            .collect();
        b.spawn(Payload::empty(), annotations);
    }
    b.taskwait();
    b.build()
}

/// Generates the Task-Chain microbenchmark: `n` tasks all `inout`-ing the same `deps` addresses,
/// forming one long dependence chain.
///
/// # Panics
///
/// Panics if `deps` exceeds the 15-dependence Picos limit.
pub fn task_chain(n: usize, deps: usize) -> TaskProgram {
    assert!(deps <= MAX_DEPENDENCES, "at most {MAX_DEPENDENCES} dependences");
    let mut b = ProgramBuilder::new(format!("task-chain ({deps} dep)"));
    for _ in 0..n {
        let annotations = (0..deps)
            .map(|d| Dependence::read_write(BUFFER_BASE + d as u64 * 64))
            .collect();
        b.spawn(Payload::empty(), annotations);
    }
    b.taskwait();
    b.build()
}

/// A synthetic uniform workload: `n` independent tasks of exactly `task_cycles` compute cycles,
/// used by the granularity sweeps of Figures 8 and 10.
pub fn uniform_tasks(n: usize, task_cycles: u64) -> TaskProgram {
    let mut b = ProgramBuilder::new(format!("uniform {task_cycles}c x{n}"));
    for i in 0..n {
        b.spawn(
            Payload::compute(task_cycles),
            vec![Dependence::write(BUFFER_BASE + 0x1000_0000 + (i as u64) * 64)],
        );
    }
    b.taskwait();
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tis_taskmodel::TaskId;

    #[test]
    fn task_free_is_embarrassingly_parallel() {
        let p = task_free(50, 1);
        assert_eq!(p.task_count(), 50);
        let g = p.reference_graph();
        assert_eq!(g.edge_count(), 0);
        assert!(p.tasks().all(|t| t.payload.is_empty() && t.dep_count() == 1));
    }

    #[test]
    fn task_chain_is_a_single_chain() {
        let p = task_chain(20, 1);
        let g = p.reference_graph();
        assert_eq!(g.edge_count(), 19);
        for i in 0..19u64 {
            assert!(g.has_edge(TaskId(i), TaskId(i + 1)));
        }
        let stats = g.stats(&[1.0; 20]);
        assert_eq!(stats.max_width, 1, "a chain has no parallelism");
    }

    #[test]
    fn dependence_counts_follow_request() {
        for deps in [0, 1, 7, 15] {
            assert!(task_free(5, deps).tasks().all(|t| t.dep_count() == deps));
            assert!(task_chain(5, deps).tasks().all(|t| t.dep_count() == deps));
        }
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn too_many_deps_rejected() {
        task_free(1, 16);
    }

    #[test]
    fn uniform_tasks_have_requested_size() {
        let p = uniform_tasks(10, 12_345);
        assert_eq!(p.task_count(), 10);
        let stats = p.stats(16.0);
        assert!((stats.mean_task_cycles - 12_345.0).abs() < 1e-9);
        assert_eq!(p.reference_graph().edge_count(), 0);
    }
}
