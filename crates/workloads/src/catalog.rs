//! The full 37-workload evaluation catalog of Figure 9.

use tis_taskmodel::TaskProgram;

use crate::{blackscholes, jacobi, sparselu, stream};

/// One workload instance of the paper's evaluation: a benchmark, the paper's input label, and
/// the generated task program.
#[derive(Debug, Clone)]
pub struct WorkloadInstance {
    /// Benchmark name (`"blackscholes"`, `"jacobi"`, `"sparselu"`, `"stream-barr"`,
    /// `"stream-deps"`).
    pub benchmark: &'static str,
    /// Input label as it appears on the x-axis of Figure 9 (e.g. `"4K B64"`, `"N32 M4"`).
    pub input: String,
    /// The generated task program.
    pub program: TaskProgram,
}

impl WorkloadInstance {
    /// `benchmark input` combined label.
    pub fn label(&self) -> String {
        format!("{} {}", self.benchmark, self.input)
    }
}

/// Generates all 37 workloads of Figure 9 (12 blackscholes + 3 jacobi + 10 sparselu +
/// 6 stream-barr + 6 stream-deps).
pub fn paper_catalog() -> Vec<WorkloadInstance> {
    let mut all = Vec::with_capacity(37);
    for (input, program) in blackscholes::paper_inputs() {
        all.push(WorkloadInstance { benchmark: "blackscholes", input, program });
    }
    for (input, program) in jacobi::paper_inputs() {
        all.push(WorkloadInstance { benchmark: "jacobi", input, program });
    }
    for (input, program) in sparselu::paper_inputs() {
        all.push(WorkloadInstance { benchmark: "sparselu", input, program });
    }
    for (input, program) in stream::paper_inputs(true) {
        all.push(WorkloadInstance { benchmark: "stream-barr", input, program });
    }
    for (input, program) in stream::paper_inputs(false) {
        all.push(WorkloadInstance { benchmark: "stream-deps", input, program });
    }
    all
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_exactly_37_workloads() {
        let c = paper_catalog();
        assert_eq!(c.len(), 37, "the paper evaluates 37 workloads");
        let per_bench = |name: &str| c.iter().filter(|w| w.benchmark == name).count();
        assert_eq!(per_bench("blackscholes"), 12);
        assert_eq!(per_bench("jacobi"), 3);
        assert_eq!(per_bench("sparselu"), 10);
        assert_eq!(per_bench("stream-barr"), 6);
        assert_eq!(per_bench("stream-deps"), 6);
    }

    #[test]
    fn every_workload_is_valid_and_nontrivial() {
        for w in paper_catalog() {
            w.program.validate().unwrap_or_else(|e| panic!("{}: {e}", w.label()));
            assert!(w.program.task_count() >= 10, "{} has too few tasks", w.label());
            assert!(!w.label().is_empty());
        }
    }

    #[test]
    fn task_granularities_span_several_orders_of_magnitude() {
        // Figure 8's x-axis runs from ~10^2 to ~10^7 cycles; the catalog must cover a wide span.
        let sizes: Vec<f64> = paper_catalog()
            .iter()
            .map(|w| w.program.stats(16.0).mean_task_cycles)
            .collect();
        let min = sizes.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = sizes.iter().cloned().fold(0.0, f64::max);
        assert!(min < 5_000.0, "the catalog must include fine-grained workloads (min {min:.0})");
        assert!(max > 50_000.0, "the catalog must include coarse-grained workloads (max {max:.0})");
        assert!(max / min > 100.0, "granularity span too narrow: {min:.0}..{max:.0}");
    }

    #[test]
    fn total_catalog_size_is_simulable() {
        let total_tasks: usize = paper_catalog().iter().map(|w| w.program.task_count()).sum();
        assert!(total_tasks < 150_000, "catalog too large to simulate repeatedly: {total_tasks}");
        assert!(total_tasks > 10_000, "catalog suspiciously small: {total_tasks}");
    }
}
