//! The full 37-workload evaluation catalog of Figure 9.

use tis_taskmodel::TaskProgram;

use crate::{blackscholes, jacobi, sparselu, stream};

/// One workload instance of the paper's evaluation: a benchmark, the paper's input label, and
/// the generated task program.
#[derive(Debug, Clone)]
pub struct WorkloadInstance {
    /// Benchmark name (`"blackscholes"`, `"jacobi"`, `"sparselu"`, `"stream-barr"`,
    /// `"stream-deps"`).
    pub benchmark: &'static str,
    /// Input label as it appears on the x-axis of Figure 9 (e.g. `"4K B64"`, `"N32 M4"`).
    pub input: String,
    /// The generated task program.
    pub program: TaskProgram,
}

impl WorkloadInstance {
    /// `benchmark input` combined label.
    pub fn label(&self) -> String {
        format!("{} {}", self.benchmark, self.input)
    }
}

/// Generates all 37 workloads of Figure 9 (12 blackscholes + 3 jacobi + 10 sparselu +
/// 6 stream-barr + 6 stream-deps), sized as in the paper's 8-core evaluation.
pub fn paper_catalog() -> Vec<WorkloadInstance> {
    paper_catalog_for_cores(8)
}

/// Multiplier applied to each benchmark's *parallel* dimension so that a machine with `cores`
/// cores gets at least as much concurrent work per core as the paper's 8-core prototype did.
/// Machines up to 8 cores use the paper's inputs unchanged.
pub fn parallel_scale_for_cores(cores: usize) -> usize {
    cores.div_ceil(8).max(1)
}

/// The Figure 9 catalog with every input given a **core-count context**: the paper sized its
/// inputs for the 8-core prototype, so replaying them unmodified on a 64-core machine measures
/// starvation, not scheduling. This generator multiplies each benchmark's parallel dimension
/// (option count, stencil rows, matrix blocks, stream blocks) by
/// [`parallel_scale_for_cores`] while keeping the per-task granularity — the axis the paper's
/// analysis is built on — unchanged. For `cores <= 8` the result is exactly [`paper_catalog`];
/// the input labels always keep the paper's names so sweep rows stay comparable across core
/// counts. The input grids themselves live in each benchmark module's `paper_input_sizes`,
/// so this function cannot drift from the per-module `paper_inputs` generators.
pub fn paper_catalog_for_cores(cores: usize) -> Vec<WorkloadInstance> {
    let mut all = Vec::with_capacity(37);
    for (label, _, _) in blackscholes::paper_input_sizes() {
        all.push(entry("blackscholes", &label, cores));
    }
    for (label, _) in jacobi::paper_input_sizes() {
        all.push(entry("jacobi", &label, cores));
    }
    for (label, _, _) in sparselu::paper_input_sizes() {
        all.push(entry("sparselu", &label, cores));
    }
    for benchmark in ["stream-barr", "stream-deps"] {
        for (label, _, _) in stream::paper_input_sizes() {
            all.push(entry(benchmark, label, cores));
        }
    }
    all
}

fn entry(benchmark: &'static str, input: &str, cores: usize) -> WorkloadInstance {
    entry_for_cores(benchmark, input, cores)
        .unwrap_or_else(|| panic!("catalog grid names its own entries: {benchmark} {input}"))
}

/// Generates **one** catalog entry with core-count context, without building the other 36
/// programs — what sweep cells use to instantiate their workload. Returns `None` when no
/// catalog entry has that benchmark/input label.
pub fn entry_for_cores(benchmark: &str, input: &str, cores: usize) -> Option<WorkloadInstance> {
    assert!(cores > 0, "machine needs at least one core");
    let s = parallel_scale_for_cores(cores);
    let (benchmark, program) = match benchmark {
        "blackscholes" => {
            let (_, options, block) =
                blackscholes::paper_input_sizes().into_iter().find(|(l, ..)| l == input)?;
            ("blackscholes", blackscholes::blackscholes(options * s, block))
        }
        "jacobi" => {
            let (_, n) = jacobi::paper_input_sizes().into_iter().find(|(l, _)| l == input)?;
            ("jacobi", jacobi::paper_input(n, s))
        }
        "sparselu" => {
            let (_, nb, m) =
                sparselu::paper_input_sizes().into_iter().find(|(l, ..)| l == input)?;
            // SparseLU's exploitable width grows with the square of the block count, so the
            // block count only needs to grow with the square root of the machine scale (and
            // the task count grows cubically — scaling `nb` linearly would make 64-core cells
            // intractable).
            let nb_scale = (1..=s).find(|k| k * k >= s).unwrap_or(s);
            ("sparselu", sparselu::sparselu(nb * nb_scale, m))
        }
        "stream-barr" | "stream-deps" => {
            let (_, blocks, elems) =
                stream::paper_input_sizes().into_iter().find(|(l, ..)| *l == input)?;
            let barriers = benchmark == "stream-barr";
            (
                if barriers { "stream-barr" } else { "stream-deps" },
                stream::stream(blocks * s, elems, barriers),
            )
        }
        _ => return None,
    };
    let instance = WorkloadInstance { benchmark, input: input.to_string(), program };
    // Every catalog program leaves through this chokepoint, so each one is proven acyclic,
    // reference-clean, and conflict-covered before anything simulates it.
    if let Err(e) = tis_analyze::analyze_program(&instance.program) {
        panic!("catalog generator produced an unsound graph for {}: {e}", instance.label());
    }
    Some(instance)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_exactly_37_workloads() {
        let c = paper_catalog();
        assert_eq!(c.len(), 37, "the paper evaluates 37 workloads");
        let per_bench = |name: &str| c.iter().filter(|w| w.benchmark == name).count();
        assert_eq!(per_bench("blackscholes"), 12);
        assert_eq!(per_bench("jacobi"), 3);
        assert_eq!(per_bench("sparselu"), 10);
        assert_eq!(per_bench("stream-barr"), 6);
        assert_eq!(per_bench("stream-deps"), 6);
    }

    #[test]
    fn every_workload_is_valid_and_nontrivial() {
        for w in paper_catalog() {
            w.program.validate().unwrap_or_else(|e| panic!("{}: {e}", w.label()));
            assert!(w.program.task_count() >= 10, "{} has too few tasks", w.label());
            assert!(!w.label().is_empty());
        }
    }

    #[test]
    fn task_granularities_span_several_orders_of_magnitude() {
        // Figure 8's x-axis runs from ~10^2 to ~10^7 cycles; the catalog must cover a wide span.
        let sizes: Vec<f64> = paper_catalog()
            .iter()
            .map(|w| w.program.stats(16.0).mean_task_cycles)
            .collect();
        let min = sizes.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = sizes.iter().cloned().fold(0.0, f64::max);
        assert!(min < 5_000.0, "the catalog must include fine-grained workloads (min {min:.0})");
        assert!(max > 50_000.0, "the catalog must include coarse-grained workloads (max {max:.0})");
        assert!(max / min > 100.0, "granularity span too narrow: {min:.0}..{max:.0}");
    }

    #[test]
    fn core_count_context_is_identity_at_or_below_eight_cores() {
        assert_eq!(parallel_scale_for_cores(1), 1);
        assert_eq!(parallel_scale_for_cores(8), 1);
        assert_eq!(parallel_scale_for_cores(9), 2);
        assert_eq!(parallel_scale_for_cores(64), 8);
        // The catalog must agree with the per-module paper_inputs() generators exactly — the
        // grids have a single source of truth (each module's paper_input_sizes), and this pins
        // the scale-1 passthrough against those independent generator paths.
        let mut reference: Vec<(&'static str, String, tis_taskmodel::TaskProgram)> = Vec::new();
        for (input, program) in blackscholes::paper_inputs() {
            reference.push(("blackscholes", input, program));
        }
        for (input, program) in jacobi::paper_inputs() {
            reference.push(("jacobi", input, program));
        }
        for (input, program) in sparselu::paper_inputs() {
            reference.push(("sparselu", input, program));
        }
        for (input, program) in stream::paper_inputs(true) {
            reference.push(("stream-barr", input, program));
        }
        for (input, program) in stream::paper_inputs(false) {
            reference.push(("stream-deps", input, program));
        }
        for catalog in [paper_catalog(), paper_catalog_for_cores(1)] {
            assert_eq!(catalog.len(), reference.len());
            for (w, (benchmark, input, program)) in catalog.iter().zip(&reference) {
                assert_eq!(w.benchmark, *benchmark);
                assert_eq!(&w.input, input);
                assert_eq!(&w.program, program, "{} must be untouched below 8 cores", w.label());
            }
        }
    }

    #[test]
    fn entry_for_cores_matches_the_full_catalog() {
        for cores in [4usize, 64] {
            for w in paper_catalog_for_cores(cores) {
                let single = entry_for_cores(w.benchmark, &w.input, cores)
                    .unwrap_or_else(|| panic!("{} missing from entry_for_cores", w.label()));
                assert_eq!(single.program, w.program, "{} diverges at {cores} cores", w.label());
            }
        }
        assert!(entry_for_cores("blackscholes", "9K B7", 8).is_none());
        assert!(entry_for_cores("no-such-bench", "4K B64", 8).is_none());
    }

    #[test]
    fn scaled_catalog_keeps_labels_and_granularity_but_widens_parallelism() {
        let base = paper_catalog();
        let scaled = paper_catalog_for_cores(64);
        assert_eq!(scaled.len(), base.len());
        for (b, s) in base.iter().zip(scaled.iter()) {
            assert_eq!(b.label(), s.label(), "labels key sweep rows across core counts");
            s.program.validate().unwrap_or_else(|e| panic!("{}: {e}", s.label()));
            assert!(
                s.program.task_count() > b.program.task_count(),
                "{}: 64-core input must carry more tasks ({} vs {})",
                s.label(),
                s.program.task_count(),
                b.program.task_count()
            );
            // Granularity (the paper's analysis axis) stays put: mean task size within 2x.
            let bm = b.program.stats(16.0).mean_task_cycles;
            let sm = s.program.stats(16.0).mean_task_cycles;
            assert!(
                sm / bm < 2.0 && bm / sm < 2.0,
                "{}: scaling must not change granularity ({bm:.0} -> {sm:.0})",
                s.label()
            );
        }
    }

    #[test]
    fn total_catalog_size_is_simulable() {
        let total_tasks: usize = paper_catalog().iter().map(|w| w.program.task_count()).sum();
        assert!(total_tasks < 150_000, "catalog too large to simulate repeatedly: {total_tasks}");
        assert!(total_tasks > 10_000, "catalog suspiciously small: {total_tasks}");
    }
}
