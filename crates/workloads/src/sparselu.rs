//! SparseLU — sparse blocked LU factorisation (KaStORS).
//!
//! The matrix is partitioned into `nb × nb` blocks of `m × m` elements, with a deterministic
//! sparsity pattern (some blocks are null and skipped). Each factorisation step `k` spawns:
//!
//! * `lu0(A[k][k])` — factorise the diagonal block (`inout`);
//! * `fwd(A[k][k], A[k][j])` for j > k — forward substitution on row k (`in`, `inout`);
//! * `bdiv(A[k][k], A[i][k])` for i > k — backward division on column k (`in`, `inout`);
//! * `bmod(A[i][k], A[k][j], A[i][j])` for i, j > k — trailing update (`in`, `in`, `inout`),
//!   allocating the target block if it was null.
//!
//! This produces the classic LU task graph whose parallelism shrinks as `k` grows — a good
//! stress test for dependence tracking. Per-task granularity is `O(m³)` cycles, so the paper's
//! `M1` inputs are extremely fine-grained while `M16` is moderately coarse.
//!
//! The paper's labels are `N32/N128` with `M1..M16`. Simulating the full N128 input (hundreds of
//! thousands of tasks) per runtime would dominate harness time, so `N` is mapped to the number of
//! blocks per dimension divided by four (N32 → 8×8 blocks, N128 → 32×32 blocks); the dependence
//! structure and per-task granularity — the properties the evaluation depends on — are
//! unchanged. DESIGN.md records this substitution.

use tis_taskmodel::{Dependence, Payload, ProgramBuilder, TaskProgram};

/// Base address of the block pointer table.
const BLOCK_BASE: u64 = 0xF000_0000;

fn block_addr(nb: usize, i: usize, j: usize) -> u64 {
    BLOCK_BASE + ((i * nb + j) as u64) * 0x80
}

/// Deterministic sparsity pattern used by the KaStORS generator: roughly half the off-diagonal
/// blocks start null.
fn is_null_block(i: usize, j: usize) -> bool {
    i != j && ((i + j * 7).is_multiple_of(5) || (i * 3 + j).is_multiple_of(7))
}

fn gemm_cycles(m: usize) -> u64 {
    // ~2 flops per element-multiply-add on the in-order FPU.
    (2 * m * m * m) as u64
}

fn block_bytes(m: usize) -> u64 {
    (m * m * 8) as u64
}

/// Generates the sparseLU program for an `nb × nb` block matrix with `m × m` element blocks.
///
/// # Panics
///
/// Panics if `nb` or `m` is zero.
pub fn sparselu(nb: usize, m: usize) -> TaskProgram {
    assert!(nb > 0 && m > 0, "degenerate sparselu input");
    let mut b = ProgramBuilder::new(format!("sparselu NB{nb} M{m}"));
    let mut present: Vec<bool> = (0..nb * nb).map(|idx| !is_null_block(idx / nb, idx % nb)).collect();
    for k in 0..nb {
        // lu0 on the diagonal block.
        b.spawn(
            Payload::new(gemm_cycles(m), 2 * block_bytes(m)),
            vec![Dependence::read_write(block_addr(nb, k, k))],
        );
        // fwd on row k.
        for j in (k + 1)..nb {
            if present[k * nb + j] {
                b.spawn(
                    Payload::new(gemm_cycles(m) * 3 / 4, 2 * block_bytes(m)),
                    vec![
                        Dependence::read(block_addr(nb, k, k)),
                        Dependence::read_write(block_addr(nb, k, j)),
                    ],
                );
            }
        }
        // bdiv on column k.
        for i in (k + 1)..nb {
            if present[i * nb + k] {
                b.spawn(
                    Payload::new(gemm_cycles(m) * 3 / 4, 2 * block_bytes(m)),
                    vec![
                        Dependence::read(block_addr(nb, k, k)),
                        Dependence::read_write(block_addr(nb, i, k)),
                    ],
                );
            }
        }
        // bmod trailing updates.
        for i in (k + 1)..nb {
            if !present[i * nb + k] {
                continue;
            }
            for j in (k + 1)..nb {
                if !present[k * nb + j] {
                    continue;
                }
                present[i * nb + j] = true; // fill-in
                b.spawn(
                    Payload::new(gemm_cycles(m), 3 * block_bytes(m)),
                    vec![
                        Dependence::read(block_addr(nb, i, k)),
                        Dependence::read(block_addr(nb, k, j)),
                        Dependence::read_write(block_addr(nb, i, j)),
                    ],
                );
            }
        }
    }
    b.taskwait();
    b.build()
}

/// The ten sparseLU input labels of Figure 9, as `(label, nb, m)` with `N` mapped to the block
/// count as described in the module docs — the single source of truth for the catalog's
/// sparseLU grid.
pub fn paper_input_sizes() -> Vec<(String, usize, usize)> {
    let mut out = Vec::new();
    for &(n_label, nb) in &[(32usize, 8usize), (128, 16)] {
        for &m in &[1usize, 2, 4, 8, 16] {
            out.push((format!("N{n_label} M{m}"), nb, m));
        }
    }
    out
}

/// The ten sparseLU inputs of Figure 9 (`N32`/`N128` × `M1,2,4,8,16`).
pub fn paper_inputs() -> Vec<(String, TaskProgram)> {
    paper_input_sizes().into_iter().map(|(label, nb, m)| (label, sparselu(nb, m))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lu_structure_serialises_on_the_diagonal() {
        let p = sparselu(4, 2);
        let g = p.reference_graph();
        assert!(g.edge_count() > 0);
        let stats = g.stats(&p.tasks().map(|t| t.payload.compute_cycles as f64).collect::<Vec<_>>());
        // LU has a long critical path through the diagonal factorisations.
        assert!(stats.critical_path_weight > gemm_cycles(2) as f64 * 3.0);
        assert!(stats.ideal_parallelism > 1.0);
    }

    #[test]
    fn granularity_scales_cubically_with_block_size() {
        let fine = sparselu(8, 1).stats(16.0).mean_task_cycles;
        let coarse = sparselu(8, 16).stats(16.0).mean_task_cycles;
        assert!(coarse / fine > 500.0, "M16 tasks are ~16^3 bigger than M1 tasks");
    }

    #[test]
    fn paper_inputs_are_ten_and_valid() {
        let inputs = paper_inputs();
        assert_eq!(inputs.len(), 10);
        for (label, p) in &inputs {
            p.validate().unwrap_or_else(|e| panic!("{label}: {e}"));
            assert!(p.task_count() > 50, "{label} should have a real task graph");
            assert!(p.task_count() < 60_000, "{label} must stay simulable");
        }
    }

    #[test]
    fn sparsity_skips_some_blocks() {
        let dense_count = {
            // A dense 6x6 LU would have sum_k (1 + 2(nb-k-1) + (nb-k-1)^2) tasks.
            let nb = 6usize;
            (0..nb).map(|k| 1 + 2 * (nb - k - 1) + (nb - k - 1) * (nb - k - 1)).sum::<usize>()
        };
        let sparse_count = sparselu(6, 2).task_count();
        assert!(sparse_count < dense_count, "sparsity must reduce the task count");
    }
}
