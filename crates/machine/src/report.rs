//! Execution reports and the derived metrics used by the paper's figures.

use tis_mem::MemoryStats;
use tis_sim::Cycle;
use tis_taskmodel::{ExecRecord, ExecutionValidator, TaskProgram, TenantReport, ValidationError};

use crate::context::CoreStats;
use crate::fabric::FabricStats;

/// The result of simulating one program on one runtime/fabric combination.
///
/// Reports are plainly comparable: every field is an integer-valued simulation outcome, so two
/// equal reports are *bit-identical* executions — the property the fault layer's replay
/// guarantee is stated (and tested) in terms of.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecutionReport {
    /// Runtime that produced the schedule (`"phentos"`, `"nanos-rv"`, …).
    pub runtime: String,
    /// Fabric the runtime used (`"rocc-picos"`, `"axi-picos"`, `"null"`).
    pub fabric: String,
    /// Number of cores in the machine.
    pub cores: usize,
    /// Makespan of the program in core cycles.
    pub total_cycles: Cycle,
    /// Per-core activity breakdown.
    pub core_stats: Vec<CoreStats>,
    /// Per-task execution records (start/end/core of every task body).
    pub records: Vec<ExecRecord>,
    /// Scheduler-fabric statistics.
    pub fabric_stats: FabricStats,
    /// Memory-system statistics.
    pub memory_stats: MemoryStats,
    /// Number of tasks the runtime retired.
    pub tasks_retired: u64,
    /// High-water mark of task descriptors resident in the runtime's task source (0 for
    /// runtimes predating the streaming refactor and for engine test doubles). For a streamed
    /// run this is the `O(window)` memory-footprint proxy the streaming-scale bench gates on;
    /// for a materialized run it is the true maximum number of simultaneously in-flight tasks.
    pub peak_resident_tasks: u64,
    /// Per-tenant serving metrics for multi-tenant runs (one entry per tenant, in tenant
    /// order). Empty for single-program runs, so legacy reports stay bit-identical and the
    /// `Eq`-means-identical-execution property is preserved.
    pub tenants: Vec<TenantReport>,
}

impl ExecutionReport {
    /// Speedup of this execution with respect to a serial execution taking `serial_cycles`.
    pub fn speedup_over(&self, serial_cycles: Cycle) -> f64 {
        if self.total_cycles == 0 {
            return 0.0;
        }
        serial_cycles as f64 / self.total_cycles as f64
    }

    /// Mean cycles per retired task (makespan divided by task count). On a single-core run of an
    /// empty-payload microbenchmark this is exactly the paper's *lifetime task scheduling
    /// overhead* (Figure 7).
    pub fn mean_cycles_per_task(&self) -> f64 {
        if self.tasks_retired == 0 {
            return 0.0;
        }
        self.total_cycles as f64 / self.tasks_retired as f64
    }

    /// Total cycles spent executing task payloads across all cores.
    pub fn total_payload_cycles(&self) -> u64 {
        self.core_stats.iter().map(|s| s.payload_cycles).sum()
    }

    /// Mean per-task scheduling overhead once the payload time is subtracted out:
    /// `(sum over cores of busy time − payload time) / tasks`. This matches the paper's
    /// definition of lifetime overhead for runs where cores are never starved.
    pub fn lifetime_overhead_per_task(&self) -> f64 {
        if self.tasks_retired == 0 {
            return 0.0;
        }
        let busy: u64 = self
            .core_stats
            .iter()
            .map(|s| {
                s.payload_cycles
                    .checked_add(s.runtime_cycles)
                    .and_then(|a| a.checked_add(s.idle_cycles))
                    .expect("per-core cycle totals overflow u64")
            })
            .sum();
        let payload = self.total_payload_cycles();
        (busy.saturating_sub(payload)) as f64 / self.tasks_retired as f64
    }

    /// Fraction of machine-cycles (cores × makespan) spent in task payloads.
    pub fn payload_utilisation(&self) -> f64 {
        let capacity = self.total_cycles.saturating_mul(self.cores as u64);
        if capacity == 0 {
            return 0.0;
        }
        self.total_payload_cycles() as f64 / capacity as f64
    }

    /// Per-core busy/idle split of the makespan: each core's busy time is its accounted
    /// payload + runtime cycles (clamped to the makespan), and its idle time is the remainder —
    /// so by construction busy + idle sums to exactly `cores × total_cycles`, with parked
    /// workers (whose local clocks ran past the makespan waiting for work that never came)
    /// charged as idle for the whole run.
    pub fn core_utilisation(&self) -> Vec<CoreUtilisation> {
        let split: Vec<CoreUtilisation> = self
            .core_stats
            .iter()
            .map(|s| {
                // Checked rather than bare addition: at 10⁶–10⁷ streamed tasks the per-core
                // counters are far from u64::MAX, but a silent wrap here would corrupt the
                // partition invariant below instead of failing loudly.
                let accounted = s
                    .payload_cycles
                    .checked_add(s.runtime_cycles)
                    .expect("per-core busy cycles overflow u64");
                let busy = accounted.min(self.total_cycles);
                CoreUtilisation { busy_cycles: busy, idle_cycles: self.total_cycles - busy }
            })
            .collect();
        debug_assert_eq!(
            split
                .iter()
                .try_fold(0u64, |acc, u| acc
                    .checked_add(u.busy_cycles)
                    .and_then(|a| a.checked_add(u.idle_cycles)))
                .expect("utilisation sum overflows u64"),
            self.total_cycles
                .checked_mul(self.cores as u64)
                .expect("cores x makespan overflows u64"),
            "busy + idle must partition cores x makespan exactly"
        );
        split
    }

    /// Validates the recorded schedule against the program's reference dependence graph.
    ///
    /// # Errors
    ///
    /// Returns the first [`ValidationError`] found (missing/duplicated task, dependence or
    /// barrier violation, or two task bodies overlapping on one core).
    pub fn validate_against(&self, program: &TaskProgram) -> Result<(), ValidationError> {
        ExecutionValidator::new(program).check(&self.records)
    }

    /// Jain fairness index over the per-tenant task throughputs of a multi-tenant run:
    /// `(Σx)² / (n·Σx²)`, which is `1.0` for a perfectly even split and `1/n` when one tenant
    /// monopolises the machine. Returns `1.0` for runs with fewer than two tenants (a single
    /// tenant is trivially fair to itself).
    pub fn tenant_jain_fairness(&self) -> f64 {
        if self.tenants.len() < 2 {
            return 1.0;
        }
        let throughputs: Vec<f64> = self.tenants.iter().map(|t| t.throughput()).collect();
        jain_fairness(&throughputs)
    }

    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "{:<10} {:>12} cycles, {:>6} tasks, {:>5.2} payload utilisation",
            self.runtime,
            self.total_cycles,
            self.tasks_retired,
            self.payload_utilisation()
        )
    }
}

/// Jain's fairness index of a set of non-negative allocations: `(Σx)² / (n·Σx²)`.
///
/// Bounded in `[1/n, 1]`: `1.0` when every allocation is equal, `1/n` when a single party
/// receives everything. Returns `1.0` for empty input and `0.0` when every allocation is zero
/// (no work was served, so no fairness claim can be made).
pub fn jain_fairness(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 1.0;
    }
    let sum: f64 = xs.iter().sum();
    let sum_sq: f64 = xs.iter().map(|x| x * x).sum();
    if sum_sq == 0.0 {
        return 0.0;
    }
    (sum * sum) / (xs.len() as f64 * sum_sq)
}

/// One core's share of the makespan, as split by [`ExecutionReport::core_utilisation`].
/// `busy_cycles + idle_cycles` is always exactly the makespan.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoreUtilisation {
    /// Cycles the core spent on payload or runtime work within the makespan.
    pub busy_cycles: u64,
    /// Cycles the core was idle (or parked past the end of the program) within the makespan.
    pub idle_cycles: u64,
}

/// Breakdown of where one task's lifetime overhead went; filled by runtimes that instrument
/// their scheduling paths (used by the ablation benches).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TaskLifetimeBreakdown {
    /// Cycles spent creating and submitting the task.
    pub submit: Cycle,
    /// Cycles spent fetching the task on the worker side (including failed polls attributable
    /// to it).
    pub fetch: Cycle,
    /// Cycles spent retiring the task and waking successors.
    pub retire: Cycle,
}

impl TaskLifetimeBreakdown {
    /// Total per-task overhead.
    pub fn total(&self) -> Cycle {
        self.submit + self.fetch + self.retire
    }
}

/// The MTT-derived maximum speedup bound of Section VI-B2, in its single-core-overhead form:
/// `MS(t) = min(cores, t / Lo)` for mean task size `t` and lifetime overhead `Lo`.
///
/// This is the form the paper's Figures 6 and 10 plot. It treats `1 / Lo` — the task
/// throughput of a *single* core playing producer and consumer — as the system's maximum task
/// throughput, which is exact for platforms whose per-task overhead serialises on a shared
/// resource (Phentos' submission path, the AXI driver) but **pessimistic** for runtimes whose
/// overhead is paid on the worker cores and therefore parallelises (Nanos' software paths).
/// On the paper's 8-core prototype the distinction barely shows; on bigger machines it does,
/// so core-count sweeps must use [`mtt_speedup_bound_from_throughput`] with an MTT measured at
/// the swept core count instead.
///
/// Returns `cores as f64` when the overhead is zero (infinite throughput).
pub fn mtt_speedup_bound(task_cycles: f64, lifetime_overhead: f64, cores: usize) -> f64 {
    if lifetime_overhead <= 0.0 {
        return cores as f64;
    }
    (task_cycles / lifetime_overhead).min(cores as f64)
}

/// The MTT-derived maximum speedup bound in its general form: `MS(t) = min(cores, t × MTT)`
/// where `MTT` is the **measured maximum task throughput** of the whole scheduling system (in
/// tasks per cycle), e.g. from an empty-payload Task-Free run on the same machine. A workload
/// of mean task size `t` cannot retire tasks faster than the scheduling system can process
/// them, so its speedup over serial execution is capped by `t × MTT` — at any core count.
///
/// Returns `cores as f64` when the throughput is non-positive (treated as unmeasured).
pub fn mtt_speedup_bound_from_throughput(
    task_cycles: f64,
    tasks_per_cycle: f64,
    cores: usize,
) -> f64 {
    if tasks_per_cycle <= 0.0 {
        return cores as f64;
    }
    (task_cycles * tasks_per_cycle).min(cores as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tis_taskmodel::{Payload, ProgramBuilder, TaskId};

    fn report_with(records: Vec<ExecRecord>, total: Cycle, tasks: u64) -> ExecutionReport {
        ExecutionReport {
            runtime: "test".into(),
            fabric: "null".into(),
            cores: 2,
            total_cycles: total,
            core_stats: vec![CoreStats::default(); 2],
            records,
            fabric_stats: FabricStats::default(),
            memory_stats: MemoryStats::default(),
            tasks_retired: tasks,
            peak_resident_tasks: 0,
            tenants: Vec::new(),
        }
    }

    #[test]
    fn speedup_and_per_task_metrics() {
        let r = report_with(Vec::new(), 500, 10);
        assert!((r.speedup_over(2_000) - 4.0).abs() < 1e-12);
        assert!((r.mean_cycles_per_task() - 50.0).abs() < 1e-12);
        let empty = report_with(Vec::new(), 0, 0);
        assert_eq!(empty.speedup_over(100), 0.0);
        assert_eq!(empty.mean_cycles_per_task(), 0.0);
    }

    #[test]
    fn lifetime_overhead_subtracts_payload() {
        let mut r = report_with(Vec::new(), 1_000, 4);
        r.core_stats[0].payload_cycles = 400;
        r.core_stats[0].runtime_cycles = 100;
        r.core_stats[1].payload_cycles = 200;
        r.core_stats[1].runtime_cycles = 60;
        r.core_stats[1].idle_cycles = 40;
        // busy = 400+100+200+60+40 = 800; payload = 600; overhead per task = 200/4.
        assert!((r.lifetime_overhead_per_task() - 50.0).abs() < 1e-12);
        assert!((r.payload_utilisation() - 600.0 / 2_000.0).abs() < 1e-12);
    }

    #[test]
    fn validation_round_trip() {
        let mut b = ProgramBuilder::new("p");
        b.spawn(Payload::compute(10), vec![]);
        b.spawn(Payload::compute(10), vec![]);
        let program = b.build();
        let ok = report_with(
            vec![
                ExecRecord { task: TaskId(0), core: 0, start: 0, end: 10 },
                ExecRecord { task: TaskId(1), core: 1, start: 0, end: 10 },
            ],
            10,
            2,
        );
        assert!(ok.validate_against(&program).is_ok());
        let bad = report_with(vec![ExecRecord { task: TaskId(0), core: 0, start: 0, end: 10 }], 10, 1);
        assert!(bad.validate_against(&program).is_err());
    }

    #[test]
    fn mtt_bound_matches_figure_6_shape() {
        // Phentos Task-Chain(1 dep) overhead is ~329 cycles; at 1000-cycle tasks the bound is
        // just below 3x, and by 10k-cycle tasks it has saturated at the core count — exactly the
        // narrative of Section VI-B2.
        let phentos = mtt_speedup_bound(1_000.0, 329.0, 8);
        assert!(phentos > 2.5 && phentos < 3.5);
        assert_eq!(mtt_speedup_bound(10_000.0, 329.0, 8), 8.0);
        // Software runtimes with ~36k-cycle overheads cannot exceed 1x even at 10k-cycle tasks.
        assert!(mtt_speedup_bound(10_000.0, 35_867.0, 8) < 1.0);
        // Degenerate cases.
        assert_eq!(mtt_speedup_bound(1_000.0, 0.0, 8), 8.0);
    }

    #[test]
    fn throughput_bound_scales_with_the_swept_core_count() {
        // A system retiring one task every 500 cycles caps 1000-cycle tasks at 2x — whether
        // the machine has 8 or 64 cores.
        let mtt = 1.0 / 500.0;
        assert!((mtt_speedup_bound_from_throughput(1_000.0, mtt, 8) - 2.0).abs() < 1e-12);
        assert!((mtt_speedup_bound_from_throughput(1_000.0, mtt, 64) - 2.0).abs() < 1e-12);
        // Coarse tasks saturate at the core count, which must follow the sweep axis.
        assert_eq!(mtt_speedup_bound_from_throughput(1_000_000.0, mtt, 1), 1.0);
        assert_eq!(mtt_speedup_bound_from_throughput(1_000_000.0, mtt, 64), 64.0);
        // Unmeasured throughput degenerates to the trivial core-count bound.
        assert_eq!(mtt_speedup_bound_from_throughput(1_000.0, 0.0, 16), 16.0);
        // When the single-core overhead really is the serial bottleneck the two forms agree.
        let lo = 500.0;
        assert!(
            (mtt_speedup_bound(1_000.0, lo, 8) - mtt_speedup_bound_from_throughput(1_000.0, 1.0 / lo, 8)).abs()
                < 1e-12
        );
    }

    #[test]
    fn core_utilisation_partitions_the_makespan_exactly() {
        let mut r = report_with(Vec::new(), 1_000, 4);
        r.core_stats[0].payload_cycles = 700;
        r.core_stats[0].runtime_cycles = 200;
        // Core 1 parked far past the makespan: busy clamps, the rest is idle.
        r.core_stats[1].runtime_cycles = 1_500;
        let u = r.core_utilisation();
        assert_eq!(u[0], CoreUtilisation { busy_cycles: 900, idle_cycles: 100 });
        assert_eq!(u[1], CoreUtilisation { busy_cycles: 1_000, idle_cycles: 0 });
        let total: u64 = u.iter().map(|c| c.busy_cycles + c.idle_cycles).sum();
        assert_eq!(total, r.total_cycles * r.cores as u64);
    }

    #[test]
    fn breakdown_total() {
        let b = TaskLifetimeBreakdown { submit: 10, fetch: 20, retire: 5 };
        assert_eq!(b.total(), 35);
    }

    #[test]
    fn summary_contains_runtime_and_tasks() {
        let r = report_with(Vec::new(), 500, 10);
        let s = r.summary();
        assert!(s.contains("test") && s.contains("10"));
    }

    #[test]
    fn jain_fairness_spans_its_bounds() {
        // Even split → 1.0; total monopoly among n parties → 1/n.
        assert!((jain_fairness(&[3.0, 3.0, 3.0, 3.0]) - 1.0).abs() < 1e-12);
        assert!((jain_fairness(&[1.0, 0.0, 0.0, 0.0]) - 0.25).abs() < 1e-12);
        // Mixed allocation: (1+2+3)² / (3 · (1+4+9)) = 36/42.
        assert!((jain_fairness(&[1.0, 2.0, 3.0]) - 36.0 / 42.0).abs() < 1e-12);
        // Degenerate inputs.
        assert_eq!(jain_fairness(&[]), 1.0);
        assert_eq!(jain_fairness(&[0.0, 0.0]), 0.0);
    }

    #[test]
    fn tenant_fairness_reads_per_tenant_throughput() {
        let mut r = report_with(Vec::new(), 1_000, 20);
        // Fewer than two tenants: trivially fair, and legacy reports carry no tenants at all.
        assert_eq!(r.tenant_jain_fairness(), 1.0);
        let tenant = |name: &str, tasks: u64, makespan: u64| TenantReport {
            name: name.into(),
            tasks,
            first_arrival: 0,
            last_retire: makespan,
            makespan,
            turnaround_total: 0,
            p50: 0,
            p90: 0,
            p99: 0,
        };
        // Equal throughput (10 tasks / 1000 cycles each) → perfectly fair.
        r.tenants = vec![tenant("a", 10, 1_000), tenant("b", 10, 1_000)];
        assert!((r.tenant_jain_fairness() - 1.0).abs() < 1e-12);
        // One tenant served 3x the throughput: (1+3)²/(2·(1+9)) = 16/20.
        r.tenants = vec![tenant("a", 10, 1_000), tenant("b", 30, 1_000)];
        assert!((r.tenant_jain_fairness() - 0.8).abs() < 1e-12);
    }
}
