//! Per-core execution context.
//!
//! A runtime agent (the main thread or a worker pinned to a core) spends cycles exclusively by
//! calling methods on its [`CoreCtx`]: plain computation, cache-coherent memory accesses that go
//! through the MESI model, atomic read-modify-writes, system calls, task-payload execution and
//! idle waiting. The engine owns the shared structures (memory system, DRAM channel) and lends
//! them to the context for the duration of one agent step.

use tis_mem::{AccessKind, BandwidthModel, MemorySystem};
use tis_obs::{MemAccessKind, MemEvent, Observer, TaskEvent, TaskStage};
use tis_sim::Cycle;
use tis_taskmodel::Payload;

use crate::cost::CostModel;

/// Per-core activity statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CoreStats {
    /// Cycles spent executing task payloads.
    pub payload_cycles: u64,
    /// Cycles spent in runtime code (everything except payloads and idling).
    pub runtime_cycles: u64,
    /// Cycles spent idle (waiting for work or for a barrier).
    pub idle_cycles: u64,
    /// Number of memory operations issued by runtime code.
    pub memory_ops: u64,
    /// Number of task payloads executed on this core.
    pub tasks_executed: u64,
    /// Number of system calls issued.
    pub syscalls: u64,
}

impl CoreStats {
    /// Total accounted cycles (payload + runtime + idle).
    pub fn total_cycles(&self) -> u64 {
        self.payload_cycles + self.runtime_cycles + self.idle_cycles
    }

    /// Fraction of accounted time spent running payloads.
    pub fn payload_fraction(&self) -> f64 {
        let t = self.total_cycles();
        if t == 0 {
            0.0
        } else {
            self.payload_cycles as f64 / t as f64
        }
    }
}

/// The micro-operation interface a runtime agent uses to spend cycles on its core.
pub struct CoreCtx<'a> {
    core: usize,
    time: Cycle,
    step_start: Cycle,
    mem: &'a mut MemorySystem,
    dram: &'a mut BandwidthModel,
    costs: &'a CostModel,
    stats: &'a mut CoreStats,
    /// Observer chokepoint for this step; `None` on unobserved runs, where every emission
    /// helper is a single branch.
    obs: Option<&'a mut dyn Observer>,
    /// Cached `wants_mem_events()` so the per-access hot path never makes a virtual call.
    obs_mem: bool,
}

impl core::fmt::Debug for CoreCtx<'_> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("CoreCtx")
            .field("core", &self.core)
            .field("time", &self.time)
            .field("step_start", &self.step_start)
            .field("observed", &self.obs.is_some())
            .finish_non_exhaustive()
    }
}

impl<'a> CoreCtx<'a> {
    /// Creates a context for one agent step. Used by the engine; runtimes receive it ready-made.
    pub fn new(
        core: usize,
        time: Cycle,
        mem: &'a mut MemorySystem,
        dram: &'a mut BandwidthModel,
        costs: &'a CostModel,
        stats: &'a mut CoreStats,
    ) -> Self {
        CoreCtx { core, time, step_start: time, mem, dram, costs, stats, obs: None, obs_mem: false }
    }

    /// Attaches the run's observer to this step (engine-only). Task-lifecycle and memory
    /// events emitted through the context flow to it; timing is unaffected.
    pub fn with_observer(mut self, obs: &'a mut dyn Observer) -> Self {
        self.obs_mem = obs.wants_mem_events();
        self.obs = Some(obs);
        self
    }

    /// Simulated cycle at which this agent step began. Because the engine always steps the core
    /// with the smallest local clock, no later step can begin before this instant — making it
    /// the safe horizon for observing other cores' state changes.
    pub fn step_start(&self) -> Cycle {
        self.step_start
    }

    /// Index of the core this context belongs to.
    pub fn core(&self) -> usize {
        self.core
    }

    /// Current local time of this core.
    pub fn now(&self) -> Cycle {
        self.time
    }

    /// The machine's software cost model.
    pub fn costs(&self) -> &CostModel {
        self.costs
    }

    /// Advances local time by `cycles` of runtime work (used for fabric latencies and modelled
    /// software costs).
    pub fn spend(&mut self, cycles: Cycle) {
        self.time += cycles;
        self.stats.runtime_cycles += cycles;
    }

    /// Spends one plain function call worth of cycles.
    pub fn call(&mut self) {
        self.spend(self.costs.function_call);
    }

    /// Spends one virtual-dispatch call worth of cycles.
    pub fn virtual_call(&mut self) {
        self.spend(self.costs.virtual_call);
    }

    /// Issues a system call of the given additional cost (on top of the base trap cost).
    pub fn syscall(&mut self, extra: Cycle) {
        self.stats.syscalls += 1;
        self.spend(self.costs.syscall_base + extra);
    }

    /// Performs a cache-coherent read of `bytes` bytes at `addr`, charging the MESI latency.
    pub fn read(&mut self, addr: u64, bytes: u64) -> Cycle {
        self.mem_access(addr, bytes, AccessKind::Read)
    }

    /// Performs a cache-coherent write of `bytes` bytes at `addr`.
    pub fn write(&mut self, addr: u64, bytes: u64) -> Cycle {
        self.mem_access(addr, bytes, AccessKind::Write)
    }

    /// Performs an atomic read-modify-write at `addr`.
    pub fn atomic(&mut self, addr: u64) -> Cycle {
        self.mem_access(addr, 8, AccessKind::Atomic)
    }

    fn mem_access(&mut self, addr: u64, bytes: u64, kind: AccessKind) -> Cycle {
        let issued_at = self.time;
        let out = self.mem.access(self.core, addr, kind, bytes, self.time);
        self.time += out.latency;
        self.stats.runtime_cycles += out.latency;
        self.stats.memory_ops += 1;
        if self.obs_mem {
            let kind = match kind {
                AccessKind::Read => MemAccessKind::Read,
                AccessKind::Write => MemAccessKind::Write,
                AccessKind::Atomic => MemAccessKind::Atomic,
            };
            if let Some(obs) = self.obs.as_deref_mut() {
                obs.on_mem(&MemEvent::Coherence {
                    cycle: issued_at,
                    core: self.core,
                    kind,
                    latency: out.latency,
                    l1_hit: out.l1_hit,
                    remote_dirty: out.remote_dirty,
                });
            }
        }
        out.latency
    }

    /// Emits a task-lifecycle event stamped at the core's current local time. Pure observation:
    /// spends no cycles, and is a no-op on unobserved runs.
    pub fn observe_task(&mut self, stage: TaskStage, task: u64) {
        if let Some(obs) = self.obs.as_deref_mut() {
            obs.on_task(&TaskEvent { cycle: self.time, task, core: Some(self.core), stage, arg: 0 });
        }
    }

    /// Emits a task-lifecycle event with an explicit timestamp and no core attribution — used
    /// for state changes whose simulated instant is not "this core, now" (e.g. a software
    /// runtime discovering that a dependence was resolved at `available_at`).
    pub fn observe_task_at(&mut self, cycle: Cycle, stage: TaskStage, task: u64) {
        if let Some(obs) = self.obs.as_deref_mut() {
            obs.on_task(&TaskEvent { cycle, task, core: None, stage, arg: 0 });
        }
    }

    /// Executes a task payload: `compute_cycles` of private computation plus the DRAM time of
    /// its `memory_bytes`, charged against the shared bandwidth channel.
    ///
    /// Returns the total payload duration in cycles.
    pub fn execute_payload(&mut self, payload: Payload) -> Cycle {
        let mem_cycles = self.dram.transfer(self.time, payload.memory_bytes);
        let total = payload.compute_cycles + mem_cycles;
        self.time += total;
        self.stats.payload_cycles += total;
        self.stats.tasks_executed += 1;
        total
    }

    /// [`CoreCtx::execute_payload`] plus task-span bracketing: emits `ExecStart` before and
    /// `ExecEnd` after, with the DRAM-stall share of the payload carried in the event's `arg`.
    /// Timing is identical to `execute_payload` — observation spends no cycles.
    pub fn execute_task_payload(&mut self, task: u64, payload: Payload) -> Cycle {
        self.observe_task(TaskStage::ExecStart, task);
        let mem_cycles = self.dram.transfer(self.time, payload.memory_bytes);
        let total = payload.compute_cycles + mem_cycles;
        self.time += total;
        self.stats.payload_cycles += total;
        self.stats.tasks_executed += 1;
        if let Some(obs) = self.obs.as_deref_mut() {
            obs.on_task(&TaskEvent {
                cycle: self.time,
                task,
                core: Some(self.core),
                stage: TaskStage::ExecEnd,
                arg: mem_cycles,
            });
        }
        total
    }

    /// Spends `cycles` doing nothing useful (waiting for work, backing off, blocked at a
    /// barrier). Accounted as idle time.
    pub fn idle(&mut self, cycles: Cycle) {
        self.time += cycles;
        self.stats.idle_cycles += cycles;
    }

    /// One spin-wait backoff iteration, as performed by Phentos when a fetch fails.
    pub fn spin_backoff(&mut self) {
        let c = self.costs.spin_backoff;
        self.time += c;
        self.stats.idle_cycles += c;
    }

    /// Snapshot of the local time when the step ends (used by the engine).
    pub fn finish(self) -> Cycle {
        self.time
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tis_mem::{CacheConfig, MemLatencies};

    fn harness() -> (MemorySystem, BandwidthModel, CostModel, CoreStats) {
        (
            MemorySystem::new(2, CacheConfig::rocket_l1d(), MemLatencies::default()),
            BandwidthModel::new(16.0),
            CostModel::default(),
            CoreStats::default(),
        )
    }

    #[test]
    fn spend_and_call_accumulate_runtime_cycles() {
        let (mut mem, mut dram, costs, mut stats) = harness();
        let mut ctx = CoreCtx::new(0, 100, &mut mem, &mut dram, &costs, &mut stats);
        ctx.spend(10);
        ctx.call();
        ctx.virtual_call();
        let end = ctx.finish();
        assert_eq!(end, 100 + 10 + costs.function_call + costs.virtual_call);
        assert_eq!(stats.runtime_cycles, 10 + costs.function_call + costs.virtual_call);
        assert_eq!(stats.idle_cycles, 0);
    }

    #[test]
    fn memory_accesses_go_through_the_mesi_model() {
        let (mut mem, mut dram, costs, mut stats) = harness();
        {
            let mut ctx = CoreCtx::new(0, 0, &mut mem, &mut dram, &costs, &mut stats);
            let miss = ctx.read(0x1000, 8);
            let hit = ctx.read(0x1000, 8);
            assert!(miss > hit);
            assert_eq!(hit, MemLatencies::default().l1_hit);
        }
        assert_eq!(stats.memory_ops, 2);
        assert!(stats.runtime_cycles > 0);
    }

    #[test]
    fn payload_execution_charges_compute_and_bandwidth() {
        let (mut mem, mut dram, costs, mut stats) = harness();
        let mut ctx = CoreCtx::new(1, 0, &mut mem, &mut dram, &costs, &mut stats);
        let d = ctx.execute_payload(Payload::new(100, 160));
        assert_eq!(d, 110, "100 compute + 160 bytes at 16 B/cycle");
        assert_eq!(ctx.finish(), 110);
        assert_eq!(stats.payload_cycles, 110);
        assert_eq!(stats.tasks_executed, 1);
    }

    #[test]
    fn idle_and_spin_are_accounted_as_idle() {
        let (mut mem, mut dram, costs, mut stats) = harness();
        let mut ctx = CoreCtx::new(0, 0, &mut mem, &mut dram, &costs, &mut stats);
        ctx.idle(50);
        ctx.spin_backoff();
        ctx.finish();
        assert_eq!(stats.idle_cycles, 50 + costs.spin_backoff);
        assert_eq!(stats.runtime_cycles, 0);
    }

    #[test]
    fn syscall_counts_and_costs() {
        let (mut mem, mut dram, costs, mut stats) = harness();
        let mut ctx = CoreCtx::new(0, 0, &mut mem, &mut dram, &costs, &mut stats);
        ctx.syscall(300);
        ctx.finish();
        assert_eq!(stats.syscalls, 1);
        assert_eq!(stats.runtime_cycles, costs.syscall_base + 300);
    }

    #[test]
    fn stats_totals_and_fractions() {
        let mut s = CoreStats::default();
        assert_eq!(s.payload_fraction(), 0.0);
        s.payload_cycles = 75;
        s.runtime_cycles = 20;
        s.idle_cycles = 5;
        assert_eq!(s.total_cycles(), 100);
        assert!((s.payload_fraction() - 0.75).abs() < 1e-12);
    }
}
