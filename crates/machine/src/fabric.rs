//! The scheduler fabric: Table I as a trait.
//!
//! A [`SchedulerFabric`] is what a core "sees" when it asks for task-scheduling services. The
//! seven operations correspond one-to-one to the custom instructions of Table I of the paper.
//! Three implementations exist in the workspace:
//!
//! * `tis-core::TisFabric` — the paper's contribution: RoCC instructions served by the per-core
//!   Picos Delegates and the shared Picos Manager, each a couple of cycles;
//! * `tis-nanos::AxiFabric` — the Picos++ baseline: the same Picos accelerator behind an
//!   AXI/MMIO driver, hundreds-to-thousands of cycles per interaction;
//! * [`NullFabric`] — used by the software-only Nanos-SW runtime, which never touches scheduling
//!   hardware (every operation fails).
//!
//! Every operation is **non-blocking** in the sense of Section IV-B: it returns a latency (the
//! cycles the issuing core is stalled) plus a success/failure outcome; only `Retire Task` has no
//! failure outcome because the hardware always accepts retirements.

use tis_sim::Cycle;

/// Identifier of a core issuing fabric operations.
pub type CoreId = usize;

/// Outcome of a fabric operation that can fail (the failure-flag value of the non-blocking
/// custom instructions).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FabricOutcome<T> {
    /// The operation succeeded and produced a value.
    Success(T),
    /// The operation could not complete; the runtime is free to retry, do other work, or yield.
    Failure,
}

impl<T> FabricOutcome<T> {
    /// Whether the operation succeeded.
    pub fn is_success(&self) -> bool {
        matches!(self, FabricOutcome::Success(_))
    }

    /// Converts to an `Option`, discarding the failure case.
    pub fn success(self) -> Option<T> {
        match self {
            FabricOutcome::Success(v) => Some(v),
            FabricOutcome::Failure => None,
        }
    }
}

/// Aggregate statistics of a fabric implementation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FabricStats {
    /// Successful task submissions (complete descriptors accepted).
    pub tasks_submitted: u64,
    /// Submission requests that returned the failure flag.
    pub submission_failures: u64,
    /// Ready-task descriptors handed to cores.
    pub tasks_dispatched: u64,
    /// Fetch operations that returned the failure flag (empty ready queue).
    pub fetch_failures: u64,
    /// Retirements processed.
    pub tasks_retired: u64,
    /// Total fabric operations issued.
    pub operations: u64,
    /// Injected tracker-entry losses detected during submission (fault injection only).
    pub tracker_losses: u64,
    /// Submissions replayed after a detected tracker-entry loss (fault injection only).
    pub tracker_resubmits: u64,
    /// Extra cycles spent detecting and replaying lost tracker entries (fault injection only).
    pub tracker_recovery_cycles: u64,
}

/// The per-core task-scheduling interface (Table I of the paper).
///
/// All operations take the issuing core and the current cycle, and return the number of cycles
/// the core is occupied by the operation together with its outcome.
pub trait SchedulerFabric {
    /// Human-readable name of the fabric (used in reports).
    fn name(&self) -> &'static str;

    /// Informs the fabric that no future agent step will begin before `safe_now`. Implementations
    /// use this to release internal state changes (retirement processing) no earlier than the
    /// simulated instant every core has reached, preserving causality under the engine's relaxed
    /// step ordering. The default implementation ignores the hint.
    fn set_time_horizon(&mut self, _safe_now: Cycle) {}

    /// *Submission Request*: announce that `packet_count` non-zero submission packets follow.
    /// Fails when the scheduler cannot currently accept a new task.
    fn submission_request(&mut self, core: CoreId, packet_count: u32, now: Cycle) -> (Cycle, FabricOutcome<()>);

    /// *Submit Packet* / *Submit Three Packets*: transfer up to three 32-bit submission packets.
    /// Fails if the per-core submission buffer cannot accept them (the runtime retries).
    fn submit_packets(&mut self, core: CoreId, packets: &[u32], now: Cycle) -> (Cycle, FabricOutcome<()>);

    /// *Ready Task Request*: ask the scheduler to route one ready descriptor to this core's
    /// private ready queue. Fails if the routing queue is full.
    fn ready_task_request(&mut self, core: CoreId, now: Cycle) -> (Cycle, FabricOutcome<()>);

    /// *Fetch SW ID*: peek the software ID at the front of this core's private ready queue.
    /// Fails if the queue is empty.
    fn fetch_sw_id(&mut self, core: CoreId, now: Cycle) -> (Cycle, FabricOutcome<u64>);

    /// *Fetch Picos ID*: pop the front of this core's private ready queue, returning the Picos
    /// ID; only succeeds after a matching successful *Fetch SW ID*.
    fn fetch_picos_id(&mut self, core: CoreId, now: Cycle) -> (Cycle, FabricOutcome<u32>);

    /// *Retire Task*: report that the task with the given Picos ID finished. Blocking in the
    /// paper (always succeeds), so only a latency is returned.
    fn retire_task(&mut self, core: CoreId, picos_id: u32, now: Cycle) -> Cycle;

    /// Statistics snapshot.
    fn stats(&self) -> FabricStats;

    /// Arms (or disarms) observability logging inside the fabric. While armed, the fabric
    /// buffers ready-publication timestamps for [`SchedulerFabric::drain_ready_log`]; while
    /// disarmed (the default, and the default implementation) it buffers nothing and costs
    /// nothing — the engine only arms it when a run carries an observer.
    fn set_observing(&mut self, _on: bool) {}

    /// Drains buffered dependence-resolution events as `(publish_cycle, sw_id)` pairs, oldest
    /// first. The engine calls this after every agent step on observed runs; the default
    /// implementation has nothing to drain.
    fn drain_ready_log(&mut self, _sink: &mut dyn FnMut(Cycle, u64)) {}

    /// Occupancy gauges for the metrics timeline: `(tasks in flight inside the scheduler,
    /// ready-queue depth)`. Fabrics without tracking hardware report `(0, 0)`.
    fn occupancy(&self) -> (usize, usize) {
        (0, 0)
    }
}

/// A fabric with no hardware behind it: every operation fails immediately.
///
/// Used by the pure-software Nanos-SW runtime (which performs dependence management in memory)
/// and by tests that need a stand-in fabric.
#[derive(Debug, Clone, Default)]
pub struct NullFabric {
    stats: FabricStats,
}

impl NullFabric {
    /// Creates a null fabric.
    pub fn new() -> Self {
        NullFabric::default()
    }
}

impl SchedulerFabric for NullFabric {
    fn name(&self) -> &'static str {
        "null"
    }

    fn submission_request(&mut self, _core: CoreId, _n: u32, _now: Cycle) -> (Cycle, FabricOutcome<()>) {
        self.stats.operations += 1;
        self.stats.submission_failures += 1;
        (1, FabricOutcome::Failure)
    }

    fn submit_packets(&mut self, _core: CoreId, _p: &[u32], _now: Cycle) -> (Cycle, FabricOutcome<()>) {
        self.stats.operations += 1;
        (1, FabricOutcome::Failure)
    }

    fn ready_task_request(&mut self, _core: CoreId, _now: Cycle) -> (Cycle, FabricOutcome<()>) {
        self.stats.operations += 1;
        (1, FabricOutcome::Failure)
    }

    fn fetch_sw_id(&mut self, _core: CoreId, _now: Cycle) -> (Cycle, FabricOutcome<u64>) {
        self.stats.operations += 1;
        self.stats.fetch_failures += 1;
        (1, FabricOutcome::Failure)
    }

    fn fetch_picos_id(&mut self, _core: CoreId, _now: Cycle) -> (Cycle, FabricOutcome<u32>) {
        self.stats.operations += 1;
        self.stats.fetch_failures += 1;
        (1, FabricOutcome::Failure)
    }

    fn retire_task(&mut self, _core: CoreId, _picos_id: u32, _now: Cycle) -> Cycle {
        self.stats.operations += 1;
        1
    }

    fn stats(&self) -> FabricStats {
        self.stats.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_helpers() {
        let s: FabricOutcome<u32> = FabricOutcome::Success(7);
        let f: FabricOutcome<u32> = FabricOutcome::Failure;
        assert!(s.is_success() && !f.is_success());
        assert_eq!(s.success(), Some(7));
        assert_eq!(f.success(), None);
    }

    #[test]
    fn null_fabric_always_fails_cheaply() {
        let mut f = NullFabric::new();
        assert_eq!(f.name(), "null");
        let (lat, out) = f.submission_request(0, 6, 0);
        assert_eq!(lat, 1);
        assert!(!out.is_success());
        let (_, out) = f.fetch_sw_id(1, 5);
        assert!(!out.is_success());
        let lat = f.retire_task(0, 3, 10);
        assert_eq!(lat, 1);
        let stats = f.stats();
        assert_eq!(stats.operations, 3);
        assert_eq!(stats.submission_failures, 1);
        assert_eq!(stats.fetch_failures, 1);
    }
}
