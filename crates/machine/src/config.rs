//! Machine configuration.

use tis_mem::{CacheConfig, FaultConfig, MemLatencies, MemoryModel};
use tis_sim::Frequency;

use crate::cost::CostModel;

/// Configuration of the simulated multi-core machine.
///
/// The default reproduces the paper's prototype (Section VI-A1): eight in-order cores at 80 MHz,
/// eight-way 32 KB private L1 data caches with MESI coherence over a snooping bus, no shared
/// L2, and 667 MHz DRAM.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineConfig {
    /// Number of cores (and hardware threads; one runtime thread is pinned per core).
    pub cores: usize,
    /// Core clock frequency.
    pub core_clock: Frequency,
    /// DRAM clock frequency (used for documentation and latency conversions).
    pub memory_clock: Frequency,
    /// Geometry of each core's private L1 data cache.
    pub l1: CacheConfig,
    /// Latency parameters of the coherent memory system.
    pub mem_latencies: MemLatencies,
    /// Coherence interconnect model: the paper's snooping bus (default, faithful at 8 cores)
    /// or the directory/NoC model that keeps latencies honest on big meshes.
    pub memory_model: MemoryModel,
    /// Effective shared DRAM bandwidth available to task payloads, in bytes per core cycle.
    pub dram_bytes_per_cycle: f64,
    /// Cycle costs of software-level operations (calls, locks, syscalls, MMIO…).
    pub costs: CostModel,
    /// Safety cap on simulated cycles; runs exceeding it abort with an error instead of hanging.
    pub max_cycles: u64,
    /// Deterministic fault schedule injected into the memory system's NoC messages.
    /// [`FaultConfig::none`] (the default) constructs no fault layer at all; see `tis-fault`.
    pub fault: FaultConfig,
}

impl MachineConfig {
    /// The paper's eight-core Rocket Chip FPGA prototype.
    pub fn rocket_octacore() -> Self {
        MachineConfig {
            cores: 8,
            core_clock: Frequency::ROCKET_FPGA,
            memory_clock: Frequency::ZCU102_DDR,
            l1: CacheConfig::rocket_l1d(),
            mem_latencies: MemLatencies::default(),
            memory_model: MemoryModel::SnoopBus,
            dram_bytes_per_cycle: 16.0,
            costs: CostModel::default(),
            max_cycles: 20_000_000_000,
            fault: FaultConfig::none(),
        }
    }

    /// Same machine with a different core count (the paper also discusses how scheduling
    /// throughput requirements grow with the number of cores).
    pub fn rocket_with_cores(cores: usize) -> Self {
        MachineConfig { cores, ..Self::rocket_octacore() }
    }

    /// Same machine with the given coherence interconnect model.
    pub fn with_memory_model(mut self, model: MemoryModel) -> Self {
        self.memory_model = model;
        self
    }

    /// A small two-core configuration handy for fast unit tests.
    pub fn small_test() -> Self {
        MachineConfig {
            cores: 2,
            max_cycles: 50_000_000,
            ..Self::rocket_octacore()
        }
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate (zero cores, non-positive bandwidth, zero
    /// cycle cap).
    pub fn validate(&self) {
        assert!(self.cores > 0, "machine needs at least one core");
        assert!(self.dram_bytes_per_cycle > 0.0, "DRAM bandwidth must be positive");
        assert!(self.max_cycles > 0, "cycle cap must be positive");
        self.fault.validate();
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig::rocket_octacore()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_prototype() {
        let c = MachineConfig::default();
        assert_eq!(c.cores, 8);
        assert_eq!(c.core_clock.mhz(), 80);
        assert_eq!(c.memory_clock.mhz(), 667);
        assert_eq!(c.l1, CacheConfig::rocket_l1d());
        assert_eq!(c.memory_model, MemoryModel::SnoopBus, "figures are pinned to the snoop model");
        c.validate();
    }

    #[test]
    fn memory_model_override() {
        let c = MachineConfig::rocket_with_cores(64).with_memory_model(MemoryModel::directory_mesh());
        assert_eq!(c.cores, 64);
        assert_eq!(c.memory_model, MemoryModel::directory_mesh());
        c.validate();
    }

    #[test]
    fn core_count_override() {
        let c = MachineConfig::rocket_with_cores(4);
        assert_eq!(c.cores, 4);
        assert_eq!(c.core_clock.mhz(), 80);
        MachineConfig::small_test().validate();
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_invalid() {
        let c = MachineConfig { cores: 0, ..Default::default() };
        c.validate();
    }
}
