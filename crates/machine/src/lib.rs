//! Multi-core machine model: the substrate every runtime in the workspace executes on.
//!
//! The paper evaluates its tightly-integrated scheduler on an eight-core, in-order, 80 MHz
//! Rocket Chip with private MESI L1 caches and no shared L2. This crate models that machine and
//! defines the interfaces the runtimes and the scheduler hardware plug into:
//!
//! * [`config`] — [`MachineConfig`]: core count, cache geometry, memory latencies, DRAM
//!   bandwidth, clocks;
//! * [`cost`] — [`CostModel`]: calibrated cycle costs of the *software* operations the runtimes
//!   perform (function calls, virtual dispatch, heap allocation, futex system calls, AXI/MMIO
//!   transactions, …). These are the knobs that make Nanos cost thousands of cycles per task
//!   while Phentos costs hundreds, and every constant is documented and overridable;
//! * [`fabric`] — the [`SchedulerFabric`] trait: the seven task-scheduling operations of
//!   Table I, as seen by a core. `tis-core` implements it with the RoCC-integrated Picos
//!   (2-cycle instructions); `tis-nanos` also provides an AXI/MMIO implementation reproducing
//!   the Picos++ baseline, and a null implementation for the software-only runtime;
//! * [`context`] — [`CoreCtx`]: the per-core micro-operation interface (compute, cache-coherent
//!   loads/stores, atomics, syscalls, payload DRAM traffic) through which runtime agents spend
//!   cycles;
//! * [`engine`] — the deterministic execution engine driving one agent per core, plus the
//!   [`RuntimeSystem`] trait runtimes implement;
//! * [`report`] — [`ExecutionReport`]: cycle counts, per-core utilisation, per-task execution
//!   records (validated against the reference dependence graph), speedups and the MTT-derived
//!   bound of Figure 6.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod context;
pub mod cost;
pub mod engine;
pub mod fabric;
pub mod report;

pub use config::MachineConfig;
pub use context::{CoreCtx, CoreStats};
// Re-exported so harness-level crates can select the interconnect without a direct `tis_mem`
// dependency.
pub use tis_mem::{
    DegradedOutcome, FaultConfig, FaultDiagnosis, FaultStats, LinkContention, MemoryModel,
    NocConfig, NocContention,
};
pub use cost::CostModel;
pub use engine::{run_machine, run_machine_observed, CoreStatus, EngineError, RuntimeSystem};
pub use fabric::{FabricStats, NullFabric, SchedulerFabric};
pub use report::{
    mtt_speedup_bound, mtt_speedup_bound_from_throughput, CoreUtilisation, ExecutionReport,
    TaskLifetimeBreakdown,
};
