//! The deterministic execution engine.
//!
//! One runtime *agent* runs per core (the paper pins one runtime thread per hardware core). The
//! engine repeatedly advances the agent whose local clock is furthest behind, handing it a
//! [`CoreCtx`] to spend cycles through and the machine's [`SchedulerFabric`] to issue Table-I
//! operations against. The run ends when the [`RuntimeSystem`] declares the program finished, or
//! with an error if no agent makes progress (a genuine deadlock, e.g. when the blocking-
//! instruction ablation of Section IV-C is enabled) or the configured cycle cap is exceeded.

use tis_mem::{BandwidthModel, FaultDiagnosis, MemorySystem};
use tis_obs::{MemEvent, MetricsSample, Observer, TaskEvent, TaskStage};
use tis_sim::Cycle;

use crate::config::MachineConfig;
use crate::context::{CoreCtx, CoreStats};
use crate::fabric::SchedulerFabric;
use crate::report::ExecutionReport;
use tis_taskmodel::ExecRecord;

/// What a runtime agent reports after one step on its core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreStatus {
    /// The agent did useful work and should be stepped again.
    Progressed,
    /// The agent has nothing to do before (approximately) the given cycle.
    Waiting {
        /// Cycle at which the agent wants to be polled again.
        until: Cycle,
    },
    /// The agent has terminated and must not be stepped again.
    Finished,
}

/// A runtime plugged into the machine: it owns the program being executed and the per-core agent
/// state, and spends cycles exclusively through the [`CoreCtx`] it is handed.
///
/// Runtimes are *pull-based*: the engine never hands them work — each step the agent decides
/// what to do next, pulling ops from its task source (materialized or streaming) and task
/// identities from the fabric. This keeps the single inner loop of `run_machine_inner`
/// workload-shape agnostic: a million-task streamed cell and a 40-task materialized one drive
/// the exact same engine code.
pub trait RuntimeSystem {
    /// Human-readable runtime name (e.g. `"phentos"`, `"nanos-sw"`).
    fn name(&self) -> &'static str;

    /// Advances the agent pinned to `ctx.core()` by one step.
    fn step_core(&mut self, ctx: &mut CoreCtx<'_>, fabric: &mut dyn SchedulerFabric) -> CoreStatus;

    /// Whether the whole program has completed (every task submitted, executed and retired, and
    /// the main thread has passed its final barrier).
    fn is_finished(&self) -> bool;

    /// Per-task execution records for validation against the reference dependence graph.
    fn exec_records(&self) -> Vec<ExecRecord>;

    /// Number of tasks the runtime has retired so far.
    fn tasks_retired(&self) -> u64;

    /// High-water mark of task descriptors resident in the runtime's task source over the whole
    /// run — the memory-footprint proxy the streaming-scale gate checks against the configured
    /// in-flight window. Runtimes that do not stream (every test double, and any runtime built
    /// before the streaming refactor) report `0`.
    fn peak_resident_tasks(&self) -> u64 {
        0
    }

    /// Per-tenant serving metrics, if the runtime's task source multiplexes tenants. Empty for
    /// single-program runs and for every runtime predating multi-tenant serving, which keeps
    /// legacy [`ExecutionReport`]s bit-identical.
    fn tenant_reports(&self) -> Vec<tis_taskmodel::TenantReport> {
        Vec::new()
    }
}

/// Errors terminating a simulation without a result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// No agent made progress for a long stretch of simulated time while the program was still
    /// unfinished — the system is deadlocked or livelocked.
    NoProgress {
        /// Simulated cycle at which the engine gave up.
        cycle: Cycle,
        /// Runtime that was executing.
        runtime: String,
    },
    /// The configured `max_cycles` cap was exceeded.
    CycleLimitExceeded {
        /// The configured limit.
        limit: Cycle,
        /// Runtime that was executing.
        runtime: String,
    },
    /// Every agent terminated but the runtime still reports unfinished work.
    AllAgentsFinishedEarly {
        /// Runtime that was executing.
        runtime: String,
    },
    /// An injected fault exhausted its recovery budget (a message's route crosses a dead NoC
    /// link): the engine aborts with the detector's precise diagnosis — which resource
    /// faulted, which message hit it, and how many tasks were left blocked — instead of
    /// hanging or silently computing a wrong answer.
    UnrecoverableFault {
        /// What the fault detector recorded: the dead link and the message that hit it.
        diagnosis: FaultDiagnosis,
        /// Simulated cycle at which the engine observed the diagnosis and gave up.
        cycle: Cycle,
        /// Tasks retired before the fault struck.
        tasks_retired: u64,
        /// Submitted tasks left blocked by the fault (submitted minus retired).
        tasks_blocked: u64,
        /// Runtime that was executing.
        runtime: String,
    },
}

impl core::fmt::Display for EngineError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            EngineError::NoProgress { cycle, runtime } => {
                write!(f, "no progress by any core of runtime '{runtime}' around cycle {cycle} (deadlock)")
            }
            EngineError::CycleLimitExceeded { limit, runtime } => {
                write!(f, "runtime '{runtime}' exceeded the {limit}-cycle simulation cap")
            }
            EngineError::AllAgentsFinishedEarly { runtime } => {
                write!(f, "all agents of runtime '{runtime}' terminated before the program completed")
            }
            EngineError::UnrecoverableFault { diagnosis, cycle, tasks_retired, tasks_blocked, runtime } => {
                write!(
                    f,
                    "unrecoverable fault in runtime '{runtime}': dead link {} never delivered the \
                     message from core {} to core {} issued at cycle {} ({} attempts); detected at \
                     cycle {cycle} with {tasks_retired} tasks retired and {tasks_blocked} blocked",
                    diagnosis.link, diagnosis.from, diagnosis.to, diagnosis.cycle, diagnosis.attempts
                )
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// How long (in simulated cycles) the engine tolerates a complete absence of progress before
/// declaring a deadlock.
const NO_PROGRESS_WINDOW: Cycle = 50_000_000;

/// Runs `runtime` on a machine described by `cfg`, using `fabric` as the task-scheduling
/// hardware, and returns the execution report.
///
/// # Errors
///
/// Returns an [`EngineError`] if the simulation deadlocks, exceeds the configured cycle cap, or
/// every agent terminates with work outstanding.
pub fn run_machine(
    cfg: &MachineConfig,
    runtime: &mut dyn RuntimeSystem,
    fabric: &mut dyn SchedulerFabric,
) -> Result<ExecutionReport, EngineError> {
    run_machine_inner(cfg, runtime, fabric, None)
}

/// [`run_machine`] with an observer attached: task-lifecycle events, memory events (when the
/// observer wants them) and cycle-bucketed metrics samples flow to `obs` as the run executes.
///
/// Observation is pure: it never spends simulated cycles, so the returned report — makespan,
/// per-core stats, fabric and memory statistics — is identical to the unobserved run's.
///
/// # Errors
///
/// Exactly as [`run_machine`].
pub fn run_machine_observed(
    cfg: &MachineConfig,
    runtime: &mut dyn RuntimeSystem,
    fabric: &mut dyn SchedulerFabric,
    obs: &mut dyn Observer,
) -> Result<ExecutionReport, EngineError> {
    run_machine_inner(cfg, runtime, fabric, Some(obs))
}

/// Snapshot of every gauge at `cycle`, assembled from the engine's own accounting plus the
/// fabric's and memory system's occupancy/statistics views.
fn build_sample(
    cycle: Cycle,
    fabric: &dyn SchedulerFabric,
    core_stats: &[CoreStats],
    mem: &MemorySystem,
) -> MetricsSample {
    let (in_flight, ready) = fabric.occupancy();
    let ms = mem.stats();
    MetricsSample {
        cycle,
        tracker_in_flight: in_flight as u64,
        ready_queue_len: ready as u64,
        core_busy_cycles: core_stats.iter().map(|s| s.payload_cycles + s.runtime_cycles).collect(),
        core_idle_cycles: core_stats.iter().map(|s| s.idle_cycles).collect(),
        mem_accesses: ms.accesses,
        mem_stall_cycles: ms.stall_cycles,
        dram_fetches: ms.dram_fetches,
        dram_writebacks: ms.dram_writebacks,
        invalidations: ms.invalidations,
        dirty_bounces: ms.dirty_bounces,
        noc_messages: ms.noc_messages,
        noc_flits: ms.noc_flits,
        noc_link_wait_cycles: ms.noc_link_wait_cycles,
        max_link_occupancy: ms.max_link_occupancy,
    }
}

fn run_machine_inner(
    cfg: &MachineConfig,
    runtime: &mut dyn RuntimeSystem,
    fabric: &mut dyn SchedulerFabric,
    mut obs: Option<&mut dyn Observer>,
) -> Result<ExecutionReport, EngineError> {
    cfg.validate();
    let cores = cfg.cores;
    let mut mem =
        MemorySystem::with_model_and_faults(cores, cfg.l1, cfg.mem_latencies, cfg.memory_model, cfg.fault);
    let mut dram = BandwidthModel::new(cfg.dram_bytes_per_cycle);
    // Arm the buffered observability paths only when a run carries an observer; unobserved runs
    // keep every flag false and every emission a dead branch.
    let sample_interval = match obs.as_deref_mut() {
        Some(o) => {
            fabric.set_observing(true);
            mem.set_observing(o.wants_mem_events());
            o.sample_interval()
        }
        None => None,
    };
    // First bucket boundary; `now` below is non-decreasing (the engine always steps the
    // laggard core), so crossing boundaries in step order yields a monotone timeline.
    let mut next_sample: Cycle = sample_interval.unwrap_or(Cycle::MAX);
    // Under fault injection the caller may tighten the deadlock watchdog so a dead link is
    // diagnosed in test-sized budgets rather than after the default 50M-cycle window.
    let watchdog_window = if cfg.fault.watchdog_cycles > 0 { cfg.fault.watchdog_cycles } else { NO_PROGRESS_WINDOW };
    let mut core_time: Vec<Cycle> = vec![0; cores];
    let mut core_stats: Vec<CoreStats> = vec![CoreStats::default(); cores];
    let mut finished: Vec<bool> = vec![false; cores];
    let mut last_progress: Cycle = 0;
    // Debug builds audit the memory system's global invariants (SWMR, directory precision)
    // every few thousand steps, catching a corrupted sharer set mid-run instead of at the
    // end of a property test. Stride-based so the check stays off the per-step hot path;
    // compiled out entirely in release builds.
    #[cfg(debug_assertions)]
    let mut steps_since_audit: u32 = 0;

    loop {
        if runtime.is_finished() {
            break;
        }
        #[cfg(debug_assertions)]
        {
            steps_since_audit += 1;
            if steps_since_audit >= 8192 {
                steps_since_audit = 0;
                if let Err(e) = mem.check_coherence_invariants() {
                    panic!("coherence invariant violated mid-run (runtime '{}'): {e}", runtime.name());
                }
            }
        }
        // Pick the live core that is furthest behind in time.
        let Some(core) = (0..cores).filter(|&c| !finished[c]).min_by_key(|&c| core_time[c]) else {
            return Err(EngineError::AllAgentsFinishedEarly { runtime: runtime.name().to_string() });
        };
        let now = core_time[core];
        if now > cfg.max_cycles {
            return Err(EngineError::CycleLimitExceeded {
                limit: cfg.max_cycles,
                runtime: runtime.name().to_string(),
            });
        }
        if now.saturating_sub(last_progress) > watchdog_window {
            return Err(EngineError::NoProgress { cycle: now, runtime: runtime.name().to_string() });
        }

        let status;
        let end_time;
        {
            fabric.set_time_horizon(now);
            let mut ctx = CoreCtx::new(core, now, &mut mem, &mut dram, &cfg.costs, &mut core_stats[core]);
            if let Some(o) = obs.as_deref_mut() {
                ctx = ctx.with_observer(o);
            }
            status = runtime.step_core(&mut ctx, fabric);
            end_time = ctx.finish();
        }
        if let Some(o) = obs.as_deref_mut() {
            // Device-side dependence resolutions surface through the fabric's ready log: the
            // scheduler, not a core, crossed these tasks into Ready.
            fabric.drain_ready_log(&mut |cycle, sw_id| {
                o.on_task(&TaskEvent { cycle, task: sw_id, core: None, stage: TaskStage::Ready, arg: 0 });
            });
            mem.drain_noc_legs(&mut |leg| {
                o.on_mem(&MemEvent::NocLeg {
                    cycle: leg.at,
                    from: leg.from,
                    to: leg.to,
                    flits: leg.flits,
                    wait_cycles: leg.wait_cycles,
                });
            });
            if now >= next_sample {
                o.on_sample(&build_sample(now, fabric, &core_stats, &mem));
                let interval = sample_interval.unwrap_or(Cycle::MAX);
                next_sample = (now / interval + 1).saturating_mul(interval);
            }
        }
        match status {
            CoreStatus::Progressed => {
                // Guarantee forward motion even if the agent forgot to spend cycles.
                core_time[core] = end_time.max(now + 1);
                last_progress = last_progress.max(core_time[core]);
            }
            CoreStatus::Waiting { until } => {
                let resume = until.max(end_time).max(now + 1);
                core_stats[core].idle_cycles += resume - end_time;
                core_time[core] = resume;
            }
            CoreStatus::Finished => {
                core_time[core] = end_time.max(now);
                finished[core] = true;
                last_progress = last_progress.max(core_time[core]);
            }
        }
        // A dead-link diagnosis recorded during this step means some message can never be
        // delivered: abort with the detector's report instead of spinning until the watchdog.
        if let Some(diagnosis) = mem.fault_diagnosis() {
            let retired = runtime.tasks_retired();
            let submitted = fabric.stats().tasks_submitted;
            return Err(EngineError::UnrecoverableFault {
                diagnosis,
                cycle: core_time[core],
                tasks_retired: retired,
                tasks_blocked: submitted.saturating_sub(retired),
                runtime: runtime.name().to_string(),
            });
        }
    }

    // The program's makespan is the time of the latest agent that actually did something; idle
    // workers parked far in the future (waiting for work that never came) do not extend it.
    let total_cycles = core_time
        .iter()
        .zip(core_stats.iter())
        .filter(|(_, s)| s.total_cycles() > 0)
        .map(|(&t, _)| t)
        .max()
        .unwrap_or_else(|| core_time.iter().copied().max().unwrap_or(0));

    if let Some(o) = obs {
        // One closing sample at the makespan so the timeline always ends on the final state.
        if sample_interval.is_some() {
            o.on_sample(&build_sample(total_cycles, fabric, &core_stats, &mem));
        }
        fabric.set_observing(false);
        mem.set_observing(false);
    }

    Ok(ExecutionReport {
        runtime: runtime.name().to_string(),
        fabric: fabric.name().to_string(),
        cores,
        total_cycles,
        core_stats,
        records: runtime.exec_records(),
        fabric_stats: fabric.stats(),
        memory_stats: mem.stats(),
        tasks_retired: runtime.tasks_retired(),
        peak_resident_tasks: runtime.peak_resident_tasks(),
        tenants: runtime.tenant_reports(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::NullFabric;
    use tis_taskmodel::TaskId;

    /// A toy runtime: each core executes `per_core` dummy "tasks" of 100 cycles each.
    struct ToyRuntime {
        per_core: u64,
        done: Vec<u64>,
        records: Vec<ExecRecord>,
    }

    impl ToyRuntime {
        fn new(cores: usize, per_core: u64) -> Self {
            ToyRuntime { per_core, done: vec![0; cores], records: Vec::new() }
        }
    }

    impl RuntimeSystem for ToyRuntime {
        fn name(&self) -> &'static str {
            "toy"
        }
        fn step_core(&mut self, ctx: &mut CoreCtx<'_>, _fabric: &mut dyn SchedulerFabric) -> CoreStatus {
            let core = ctx.core();
            if self.done[core] >= self.per_core {
                return CoreStatus::Finished;
            }
            let start = ctx.now();
            ctx.spend(100);
            let id = (core as u64) * self.per_core + self.done[core];
            self.records.push(ExecRecord { task: TaskId(id), core, start, end: ctx.now() });
            self.done[core] += 1;
            CoreStatus::Progressed
        }
        fn is_finished(&self) -> bool {
            self.done.iter().all(|&d| d >= self.per_core)
        }
        fn exec_records(&self) -> Vec<ExecRecord> {
            self.records.clone()
        }
        fn tasks_retired(&self) -> u64 {
            self.done.iter().sum()
        }
    }

    /// A runtime that never progresses: every core waits forever.
    struct StuckRuntime;
    impl RuntimeSystem for StuckRuntime {
        fn name(&self) -> &'static str {
            "stuck"
        }
        fn step_core(&mut self, ctx: &mut CoreCtx<'_>, _f: &mut dyn SchedulerFabric) -> CoreStatus {
            CoreStatus::Waiting { until: ctx.now() + 1_000 }
        }
        fn is_finished(&self) -> bool {
            false
        }
        fn exec_records(&self) -> Vec<ExecRecord> {
            Vec::new()
        }
        fn tasks_retired(&self) -> u64 {
            0
        }
    }

    #[test]
    fn toy_runtime_runs_to_completion() {
        let cfg = MachineConfig::small_test();
        let mut rt = ToyRuntime::new(cfg.cores, 5);
        let mut fabric = NullFabric::new();
        let report = run_machine(&cfg, &mut rt, &mut fabric).unwrap();
        assert_eq!(report.tasks_retired, 10);
        assert_eq!(report.records.len(), 10);
        assert_eq!(report.total_cycles, 500, "each core runs 5 x 100 cycles in parallel");
        assert_eq!(report.cores, 2);
        assert_eq!(report.runtime, "toy");
        assert!(report.core_stats.iter().all(|s| s.runtime_cycles == 500));
    }

    #[test]
    fn toy_runtime_runs_under_the_directory_model_too() {
        let cfg =
            MachineConfig::small_test().with_memory_model(tis_mem::MemoryModel::directory_mesh());
        let mut rt = ToyRuntime::new(cfg.cores, 5);
        let mut fabric = NullFabric::new();
        let report = run_machine(&cfg, &mut rt, &mut fabric).unwrap();
        assert_eq!(report.tasks_retired, 10);
        assert_eq!(report.total_cycles, 500, "a memory-silent runtime is model-independent");
        assert_eq!(report.memory_stats.bus_transactions, 0);
    }

    #[test]
    fn stuck_runtime_is_detected() {
        let mut cfg = MachineConfig::small_test();
        cfg.max_cycles = 1_000_000;
        let mut rt = StuckRuntime;
        let mut fabric = NullFabric::new();
        let err = run_machine(&cfg, &mut rt, &mut fabric).unwrap_err();
        match err {
            EngineError::CycleLimitExceeded { limit, .. } => assert_eq!(limit, 1_000_000),
            EngineError::NoProgress { .. } => {}
            other => panic!("expected a progress error, got {other:?}"),
        }
    }

    #[test]
    fn all_agents_finished_early_is_an_error() {
        struct QuitRuntime;
        impl RuntimeSystem for QuitRuntime {
            fn name(&self) -> &'static str {
                "quit"
            }
            fn step_core(&mut self, _ctx: &mut CoreCtx<'_>, _f: &mut dyn SchedulerFabric) -> CoreStatus {
                CoreStatus::Finished
            }
            fn is_finished(&self) -> bool {
                false
            }
            fn exec_records(&self) -> Vec<ExecRecord> {
                Vec::new()
            }
            fn tasks_retired(&self) -> u64 {
                0
            }
        }
        let cfg = MachineConfig::small_test();
        let err = run_machine(&cfg, &mut QuitRuntime, &mut NullFabric::new()).unwrap_err();
        assert!(matches!(err, EngineError::AllAgentsFinishedEarly { .. }));
        assert!(err.to_string().contains("quit"));
    }

    #[test]
    fn engine_error_display() {
        let e = EngineError::NoProgress { cycle: 123, runtime: "x".into() };
        assert!(e.to_string().contains("deadlock"));
        let e = EngineError::CycleLimitExceeded { limit: 7, runtime: "x".into() };
        assert!(e.to_string().contains('7'));
    }

    /// A runtime whose cores read each other's cache lines, so directory traffic crosses the
    /// mesh and the fault layer (when configured) sees real NoC messages.
    struct SharingRuntime {
        rounds: u64,
        done: Vec<u64>,
    }

    impl SharingRuntime {
        fn new(cores: usize, rounds: u64) -> Self {
            SharingRuntime { rounds, done: vec![0; cores] }
        }
    }

    impl RuntimeSystem for SharingRuntime {
        fn name(&self) -> &'static str {
            "sharing"
        }
        fn step_core(&mut self, ctx: &mut CoreCtx<'_>, _f: &mut dyn SchedulerFabric) -> CoreStatus {
            let core = ctx.core();
            if self.done[core] >= self.rounds {
                return CoreStatus::Finished;
            }
            // Read a line homed on (and written by) the *other* core.
            let peer = (core + 1) % self.done.len();
            ctx.write(64 * core as u64, 8);
            ctx.read(64 * peer as u64, 8);
            self.done[core] += 1;
            CoreStatus::Progressed
        }
        fn is_finished(&self) -> bool {
            self.done.iter().all(|&d| d >= self.rounds)
        }
        fn exec_records(&self) -> Vec<ExecRecord> {
            Vec::new()
        }
        fn tasks_retired(&self) -> u64 {
            self.done.iter().sum()
        }
    }

    #[test]
    fn zero_rate_faults_leave_the_engine_bit_identical() {
        let base =
            MachineConfig::small_test().with_memory_model(tis_mem::MemoryModel::directory_mesh());
        let mut faulted = base;
        faulted.fault = tis_mem::FaultConfig::zero_rate();
        let a = run_machine(&base, &mut SharingRuntime::new(base.cores, 50), &mut NullFabric::new())
            .unwrap();
        let b = run_machine(&faulted, &mut SharingRuntime::new(base.cores, 50), &mut NullFabric::new())
            .unwrap();
        assert!(a.memory_stats.noc_messages > 0, "the runtime must exercise the mesh");
        assert_eq!(a.total_cycles, b.total_cycles);
        assert_eq!(a.memory_stats, b.memory_stats);
        assert_eq!(a.core_stats, b.core_stats);
    }

    #[test]
    fn dead_links_surface_as_a_diagnosed_unrecoverable_fault() {
        let mut cfg =
            MachineConfig::small_test().with_memory_model(tis_mem::MemoryModel::directory_mesh());
        cfg.fault = tis_mem::FaultConfig { dead_links: u32::MAX, ..tis_mem::FaultConfig::none() };
        let err = run_machine(&cfg, &mut SharingRuntime::new(cfg.cores, 50), &mut NullFabric::new())
            .unwrap_err();
        match err {
            EngineError::UnrecoverableFault { diagnosis, runtime, .. } => {
                assert_eq!(runtime, "sharing");
                assert_ne!(diagnosis.from, diagnosis.to, "the faulted leg crosses tiles");
                assert_eq!(diagnosis.attempts, cfg.fault.max_retries + 1);
            }
            other => panic!("expected an unrecoverable-fault diagnosis, got {other:?}"),
        }
    }

    #[test]
    fn fault_watchdog_tightens_the_no_progress_window() {
        let mut cfg = MachineConfig::small_test();
        cfg.fault = tis_mem::FaultConfig { watchdog_cycles: 10_000, ..tis_mem::FaultConfig::none() };
        let err = run_machine(&cfg, &mut StuckRuntime, &mut NullFabric::new()).unwrap_err();
        match err {
            EngineError::NoProgress { cycle, .. } => {
                assert!(cycle < 100_000, "the tightened watchdog fires early, at cycle {cycle}")
            }
            other => panic!("expected the watchdog, got {other:?}"),
        }
    }

    #[test]
    fn unrecoverable_fault_display_names_the_resource_and_blocked_work() {
        let e = EngineError::UnrecoverableFault {
            diagnosis: tis_mem::FaultDiagnosis { link: 9, from: 1, to: 2, cycle: 40, attempts: 4 },
            cycle: 500,
            tasks_retired: 3,
            tasks_blocked: 2,
            runtime: "x".into(),
        };
        let msg = e.to_string();
        for needle in ["dead link 9", "core 1", "core 2", "4 attempts", "3 tasks retired", "2 blocked"] {
            assert!(msg.contains(needle), "missing {needle:?} in {msg:?}");
        }
    }
}
