//! Calibrated cycle costs of software-level operations.
//!
//! The performance difference between the four platforms of the paper comes from *which* of these
//! operations each runtime performs per task, multiplied by what each costs on an 80 MHz in-order
//! Rocket core running Linux:
//!
//! * **Phentos** performs only RoCC instructions, a handful of L1-resident loads/stores and an
//!   occasional atomic — a few hundred cycles per task (Figure 7: 185–423 cycles).
//! * **Nanos-RV** keeps the hardware dependence tracking but pays Nanos' software structure:
//!   virtual dispatch, work-descriptor allocation, the central scheduler queue and its mutexes
//!   and condition variables — ~12–13 k cycles per task.
//! * **Nanos-AXI** (the Picos++ baseline of Tan et al.) additionally crosses the CPU–FPGA
//!   boundary through MMIO/DMA driver calls — ~13–19 k cycles per task.
//! * **Nanos-SW** replaces the hardware tracker with a lock-protected software dependence domain
//!   — ~25–99 k cycles per task, growing steeply with the number of dependences.
//!
//! The constants below are *inputs* to the model, not the paper's results: they come from the
//! structure of each code path (documented per field) and from public measurements of Linux
//! futex/syscall costs on small in-order cores, scaled to 80 MHz. EXPERIMENTS.md compares the
//! end-to-end overheads that *emerge* from composing them against Figure 7.

use tis_sim::Cycle;

/// Cycle costs of the software operations performed by the runtimes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    // --- plain code ---
    /// A plain (inlinable) function call, including argument setup.
    pub function_call: Cycle,
    /// A virtual (indirect) call through a vtable, as used pervasively by Nanos' plugin
    /// architecture; includes the frequent I-cache/branch-predictor misses of an in-order core.
    pub virtual_call: Cycle,
    /// Computing a hash and probing a bucket in a software hash map (Nanos-SW dependence domain).
    pub hash_probe: Cycle,
    /// Allocating a heap object (Nanos WorkDescriptor / dependence nodes); glibc malloc on a
    /// small in-order core.
    pub heap_alloc: Cycle,
    /// Freeing a heap object.
    pub heap_free: Cycle,

    // --- synchronisation ---
    /// Acquiring an uncontended mutex (atomic compare-and-swap + fences, no syscall).
    pub mutex_uncontended: Cycle,
    /// Parking on a contended mutex or condition variable: a futex_wait system call plus the
    /// eventual wake-up path. Thousands of cycles at 80 MHz under Linux.
    pub futex_wait: Cycle,
    /// Waking a thread blocked on a futex (futex_wake system call issued by the releaser).
    pub futex_wake: Cycle,
    /// One spin-wait backoff iteration (pause + reload), used by Phentos' bounded polling.
    pub spin_backoff: Cycle,
    /// Base cost of an arbitrary system call (trap, kernel entry/exit) — Nanos' scheduler
    /// yields, sleeps and timer queries.
    pub syscall_base: Cycle,

    // --- RoCC (tightly-integrated) path ---
    /// Issuing one RoCC custom instruction and receiving its response through the Rocket
    /// core's RoCC interface ("two 2-cycle-long RoCC instructions", Section IV-F2).
    pub rocc_instruction: Cycle,

    // --- AXI/MMIO (Picos++ baseline) path ---
    /// One uncached MMIO write crossing the CPU–FPGA AXI bridge.
    pub axi_mmio_write: Cycle,
    /// One uncached MMIO read crossing the CPU–FPGA AXI bridge (round trip).
    pub axi_mmio_read: Cycle,
    /// Setting up a DMA descriptor / driver bookkeeping for a batched transfer (the
    /// "DMA-like communication module" of Picos++), charged once per task submission.
    /// Fitted against Figure 7's Nanos-AXI row (the one per-task knob on that path): 753
    /// cycles puts the composed Task-Free(15) overhead within 0.5% of the paper's 17 042.
    pub axi_dma_setup: Cycle,
    /// Cost of the driver/ioctl layer entered per scheduler interaction on the ARM+FPGA system.
    pub axi_driver_call: Cycle,

    // --- serial-baseline ---
    /// Call overhead per task body in the serial (non-task) version of a benchmark.
    pub serial_call_overhead: Cycle,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            function_call: 6,
            virtual_call: 22,
            hash_probe: 35,
            heap_alloc: 180,
            heap_free: 120,
            mutex_uncontended: 45,
            futex_wait: 2_600,
            futex_wake: 900,
            spin_backoff: 12,
            syscall_base: 700,
            rocc_instruction: 2,
            axi_mmio_write: 110,
            axi_mmio_read: 160,
            axi_dma_setup: 753,
            axi_driver_call: 650,
            serial_call_overhead: 8,
        }
    }
}

impl CostModel {
    /// A cost model in which every software operation is free.
    ///
    /// Useful in tests that want to isolate the hardware (Picos + memory) component of a
    /// latency, and as the limiting case "infinitely fast runtime code".
    pub fn zero() -> Self {
        CostModel {
            function_call: 0,
            virtual_call: 0,
            hash_probe: 0,
            heap_alloc: 0,
            heap_free: 0,
            mutex_uncontended: 0,
            futex_wait: 0,
            futex_wake: 0,
            spin_backoff: 1,
            syscall_base: 0,
            rocc_instruction: 0,
            axi_mmio_write: 0,
            axi_mmio_read: 0,
            axi_dma_setup: 0,
            axi_driver_call: 0,
            serial_call_overhead: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_ordered_sensibly() {
        let c = CostModel::default();
        // The whole premise of the paper, encoded as orderings rather than absolute values.
        assert!(c.rocc_instruction < c.axi_mmio_write, "RoCC must beat MMIO");
        assert!(c.axi_mmio_write < c.futex_wait, "an MMIO write is cheaper than parking a thread");
        assert!(c.function_call < c.virtual_call);
        assert!(c.mutex_uncontended < c.futex_wait);
        assert!(c.spin_backoff < c.mutex_uncontended);
        assert!(c.heap_alloc > c.function_call);
    }

    #[test]
    fn rocc_instruction_cost_matches_paper() {
        // Section IV-F2: ready descriptors are fetched "with two 2-cycle-long RoCC instructions".
        assert_eq!(CostModel::default().rocc_instruction, 2);
    }

    #[test]
    fn zero_model_is_almost_all_zeros() {
        let z = CostModel::zero();
        assert_eq!(z.function_call, 0);
        assert_eq!(z.futex_wait, 0);
        assert_eq!(z.spin_backoff, 1, "spin backoff must stay positive to avoid zero-time loops");
    }
}
