//! End-to-end gates on the `tis-analyze` layer (PR 7).
//!
//! Four properties are pinned here, each stated against real workloads and full machine runs
//! rather than unit fixtures:
//!
//! 1. **Every platform's schedule is provably race-free.** The vector-clock detector walks
//!    each execution trace and proves every conflicting task pair happens-before-ordered —
//!    on all four platforms, and under recoverable fault injection too.
//! 2. **Mutations are detected, not absorbed.** Dropping a dependence edge from a real
//!    catalog graph makes the static preflight reject it (uncovered conflict) and makes the
//!    race detector flag the now-unordered pair in the unmutated trace. A flipped sharer bit
//!    in the directory is caught by the protocol invariant check.
//! 3. **The coherence protocol is exhaustively verified.** Model checking enumerates every
//!    reachable `(cache states, directory)` global state at the paper's core count and proves
//!    SWMR plus directory precision in all of them.
//! 4. **Analysis never changes measurements.** A sweep with every pass enabled produces the
//!    same cycle counts as one with analysis off.

use tis::analyze::{
    check_global_invariants, detect_races, model_check_protocol, AnalysisConfig, GraphError,
    GraphSpec,
};
use tis::bench::{Harness, Platform};
use tis::exp::{Sweep, SynthFamily, SynthSpec, WorkloadSpec};
use tis::machine::{FaultConfig, MemoryModel};
use tis::mem::{DirState, MesiState, SharerSet};
use tis::workloads::entry_for_cores;

/// The dependence-heaviest small catalog entry: 169 tasks, 381 edges, every conflicting pair
/// covered by a direct edge.
fn sparselu() -> tis::taskmodel::TaskProgram {
    entry_for_cores("sparselu", "N32 M1", 8).expect("catalog names this entry").program
}

#[test]
fn every_platform_runs_the_catalog_entry_race_free() {
    let program = sparselu();
    let spec = GraphSpec::from_program(&program);
    let harness = Harness::default();
    for platform in Platform::ALL {
        let report = harness
            .run(platform, &program)
            .unwrap_or_else(|e| panic!("{} failed: {e}", platform.label()));
        let analysis = detect_races(&spec, &report.records);
        assert!(
            analysis.is_race_free(),
            "{} raced: {:?}",
            platform.label(),
            analysis.races
        );
        assert!(analysis.pairs_checked > 300, "the frontier was actually walked");
    }
}

#[test]
fn fault_injected_runs_stay_race_free() {
    // Recovery reshuffles timing (retries, resubmits, delayed wakeups) but must never
    // reorder a conflicting pair past its happens-before edge.
    let program = sparselu();
    let spec = GraphSpec::from_program(&program);
    let harness = Harness::with_cores(8)
        .with_memory_model(MemoryModel::directory_mesh_contended())
        .with_faults(FaultConfig::recoverable());
    let report = harness.run(Platform::Phentos, &program).expect("recoverable faults complete");
    let analysis = detect_races(&spec, &report.records);
    assert!(analysis.is_race_free(), "chaos run raced: {:?}", analysis.races);
}

#[test]
fn dropping_a_dependence_edge_is_caught_statically_and_dynamically() {
    let program = sparselu();
    let spec = GraphSpec::from_program(&program);
    let report = Harness::default().run(Platform::Phentos, &program).expect("run completes");

    // Every conflicting pair in this graph is covered by a direct edge, so removing edges
    // must uncover one: find a single-edge mutation that (a) the static preflight rejects
    // as an uncovered conflict, and (b) the race detector flags in the *unmutated* trace —
    // the pair really did run without any other happens-before path (a pair that happened
    // to share a core is ordered by program order, so not every static hole is a dynamic
    // race; the simulator is deterministic, so whichever edge qualifies is stable).
    let mut caught_both_ways = false;
    for i in 0..spec.edges.len() {
        let edge = spec.edges[i];
        let mut mutated = spec.clone();
        mutated.edges.remove(i);
        let Err(err) = tis::analyze::analyze_graph(&mutated) else { continue };
        assert!(
            matches!(err, GraphError::UncoveredConflict { .. }),
            "a single dropped edge can only uncover a conflict, got: {err}"
        );
        let analysis = detect_races(&mutated, &report.records);
        if analysis.races.iter().any(|r| {
            (r.first.0 as usize, r.second.0 as usize) == edge
                || (r.second.0 as usize, r.first.0 as usize) == edge
        }) {
            assert!(err.to_string().contains("conflict"), "the error names the failure: {err}");
            caught_both_ways = true;
            break;
        }
    }
    assert!(
        caught_both_ways,
        "some dropped edge must be caught by both the preflight and the race detector"
    );
}

#[test]
fn corrupted_sharer_sets_violate_the_global_invariant() {
    // A directory line shared by cores {0, 2} with a ghost bit for core 1: the caches say
    // core 1 holds nothing, so the directory is imprecise and the check must name core 1.
    let caches = [MesiState::Shared, MesiState::Invalid, MesiState::Shared];
    let mut sharers = SharerSet::empty();
    sharers.insert(0);
    sharers.insert(1); // the flipped bit
    sharers.insert(2);
    let err = check_global_invariants(&caches, DirState::Shared(sharers))
        .expect_err("a ghost sharer bit must be caught");
    assert!(err.to_string().contains("core 1"), "the violation names the ghost core: {err}");

    // The complementary corruption — a *dropped* bit — is caught from the cache side.
    let mut dropped = SharerSet::empty();
    dropped.insert(0);
    check_global_invariants(&caches, DirState::Shared(dropped))
        .expect_err("a dropped sharer bit must be caught");
}

#[test]
fn the_protocol_is_exhaustively_verified_at_the_paper_core_count() {
    let report = model_check_protocol(8).expect("SWMR and precision hold everywhere");
    // 2^8 sharer subsets plus an Owned(c) x {E, M} pair per core.
    assert_eq!(report.states_explored, 256 + 16);
    assert!(report.full_reachable_dir_coverage(), "all reachable (DirState, DirOp) pairs hit");
    assert_eq!(report.local_pairs_covered, 12, "every live MESI (state, access) pair hit");
}

#[test]
fn analysis_is_a_pure_observer_in_sweeps() {
    let sweep = || {
        Sweep::new("analysis-observer")
            .over_cores([4])
            .over_platforms([Platform::Phentos, Platform::NanosSw])
            .with_workload(WorkloadSpec::synth(SynthSpec {
                family: SynthFamily::ErdosRenyi { density: 0.15 },
                tasks: 32,
                task_cycles: 4_000,
                jitter: 0.25,
            }))
    };
    let plain = sweep().run();
    let analysed = sweep().with_analysis(AnalysisConfig::full()).run();
    for (p, a) in plain.cells.iter().zip(&analysed.cells) {
        assert_eq!(p.total_cycles, a.total_cycles, "analysis must not move cycles");
        assert!(a.race_pairs_checked > 0, "the analysed cell proved its schedule");
    }
    // The JSON rows differ only by the analysis keys.
    let plain_json = plain.to_json().render();
    assert!(!plain_json.contains("race_pairs_checked"));
    assert!(analysed.to_json().render().contains("race_pairs_checked"));
}
