//! Differential suite pinning the two memory-system models to each other.
//!
//! The directory/NoC model exists to make *latencies* honest on big meshes; its *functional*
//! behaviour — which accesses hit, which find a dirty remote copy, which MESI states every
//! cache ends up in — must be exactly the snooping baseline's, or the ≤8-core figure
//! reproductions would no longer vouch for the 64-core story. These tests drive **identical
//! access traces** through both models for 2–8 cores and assert:
//!
//! * identical per-access observed values (`l1_hit`, `remote_dirty`, `lines`);
//! * identical resident `(line, MESI state)` sets in every core's cache after every step;
//! * `check_coherence_invariants` on both — which for the directory model additionally proves
//!   the sharer bitsets stay *precise* (they mirror actual cache residency exactly).
//!
//! Latencies are deliberately **not** compared: distance-dependent NoC costs are the whole
//! point of the second model.
//!
//! The contended mesh (`MemoryModel::directory_mesh_contended()`) rides the same traces as a
//! third participant: link bandwidth and finite buffers may only change *when* things happen,
//! never *what* happens, so its functional outcomes and resident states must match the other
//! two models step for step, and its per-access latency must never beat the ideal mesh's.
//!
//! A fourth participant pins the fault layer's zero-rate exactness: the contended mesh with a
//! fully-engaged but never-firing `FaultConfig::zero_rate()` schedule must be **bit-identical**
//! to the third — every access outcome *including latency*, every resident state, and the final
//! statistics. The fault layer costs nothing until a fault actually fires.

use tis::mem::{
    AccessKind, CacheConfig, FaultConfig, MemLatencies, MemoryModel, MemorySystem, LINE_SIZE,
};
use tis::sim::SimRng;

/// Builds the snooping reference, the ideal-mesh candidate, the contended-mesh candidate and
/// the zero-rate-faulted contended mesh with identical geometry.
fn quartet(
    cores: usize,
    cache: CacheConfig,
) -> (MemorySystem, MemorySystem, MemorySystem, MemorySystem) {
    let lat = MemLatencies::default();
    let snoop = MemorySystem::with_model(cores, cache, lat, MemoryModel::SnoopBus);
    let dir = MemorySystem::with_model(cores, cache, lat, MemoryModel::directory_mesh());
    let contended =
        MemorySystem::with_model(cores, cache, lat, MemoryModel::directory_mesh_contended());
    let zero_faulted = MemorySystem::with_model_and_faults(
        cores,
        cache,
        lat,
        MemoryModel::directory_mesh_contended(),
        FaultConfig::zero_rate(),
    );
    (snoop, dir, contended, zero_faulted)
}

fn kind_of(sel: u64) -> AccessKind {
    match sel % 3 {
        0 => AccessKind::Read,
        1 => AccessKind::Write,
        _ => AccessKind::Atomic,
    }
}

/// Asserts both systems' caches hold identical `(line, state)` sets on every core.
fn assert_same_resident_states(snoop: &MemorySystem, dir: &MemorySystem, step: usize) {
    for core in 0..snoop.cores() {
        let mut a: Vec<_> = snoop.cache(core).resident().collect();
        let mut b: Vec<_> = dir.cache(core).resident().collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(
            a, b,
            "core {core} cache state diverged between the models after step {step}"
        );
    }
}

/// Drives one identical trace through both models, checking equivalence at every step.
/// Each model advances its own clock by its own latency, so timing feedback (bus queueing in
/// the snoop model) is exercised rather than bypassed.
fn drive_trace(cores: usize, cache: CacheConfig, trace: &[(usize, u64, AccessKind)]) {
    let (mut snoop, mut dir, mut contended, mut zero_faulted) = quartet(cores, cache);
    let (mut now_snoop, mut now_dir, mut now_contended) = (0u64, 0u64, 0u64);
    for (step, &(core, line, kind)) in trace.iter().enumerate() {
        let addr = line * LINE_SIZE;
        let a = snoop.access(core, addr, kind, 8, now_snoop);
        let b = dir.access(core, addr, kind, 8, now_dir);
        let c = contended.access(core, addr, kind, 8, now_contended);
        // The zero-rate faulted mesh shares the contended clock: it must be bit-identical.
        let z = zero_faulted.access(core, addr, kind, 8, now_contended);
        assert_eq!(
            c, z,
            "step {step} (core {core}, line {line:#x}, {kind:?}): the zero-rate fault layer \
             changed the outcome"
        );
        now_snoop += a.latency.max(1);
        now_dir += b.latency.max(1);
        now_contended += c.latency.max(1);
        assert_eq!(
            (a.l1_hit, a.remote_dirty, a.lines),
            (b.l1_hit, b.remote_dirty, b.lines),
            "step {step} (core {core}, line {line:#x}, {kind:?}) observed different outcomes"
        );
        assert_eq!(
            (b.l1_hit, b.remote_dirty, b.lines),
            (c.l1_hit, c.remote_dirty, c.lines),
            "step {step} (core {core}, line {line:#x}, {kind:?}): contention changed function"
        );
        assert!(
            c.latency >= b.latency,
            "step {step}: the contended mesh ({}) beat the ideal mesh ({})",
            c.latency,
            b.latency
        );
        assert_same_resident_states(&snoop, &dir, step);
        assert_same_resident_states(&dir, &contended, step);
        assert_same_resident_states(&contended, &zero_faulted, step);
        snoop.check_coherence_invariants().expect("snoop invariants");
        dir.check_coherence_invariants().expect("directory invariants");
        contended.check_coherence_invariants().expect("contended-mesh invariants");
        zero_faulted.check_coherence_invariants().expect("zero-rate-faulted mesh invariants");
    }
    // Coherence *traffic* must agree too: all models moved the same lines through memory
    // the same number of times (fetches, writebacks and dirty bounces are protocol-level
    // facts, not interconnect choices).
    let (sa, sb, sc) = (snoop.stats(), dir.stats(), contended.stats());
    assert_eq!(sa.dirty_bounces, sb.dirty_bounces, "dirty-bounce counts diverged");
    assert_eq!(sa.dram_fetches, sb.dram_fetches, "DRAM fetch counts diverged");
    assert_eq!(sa.dram_writebacks, sb.dram_writebacks, "DRAM writeback counts diverged");
    assert_eq!(sa.accesses, sb.accesses);
    assert_eq!(sb.dirty_bounces, sc.dirty_bounces, "contention changed dirty bounces");
    assert_eq!(sb.dram_fetches, sc.dram_fetches, "contention changed DRAM fetches");
    assert_eq!(sb.dram_writebacks, sc.dram_writebacks, "contention changed writebacks");
    assert_eq!(sb.invalidations, sc.invalidations, "contention changed invalidation fan-out");
    // The zero-rate fault layer is *statistically* invisible too: every counter — including
    // the fault counters themselves — matches the fault-free contended mesh exactly.
    assert_eq!(sc, zero_faulted.stats(), "zero-rate fault stats diverged from fault-free");
    assert!(zero_faulted.fault_diagnosis().is_none(), "zero-rate schedules never diagnose");
}

#[test]
fn randomized_traces_are_equivalent_for_two_to_eight_cores() {
    // Deterministic heavy traces: per core count, 4000 accesses over a 48-line working set —
    // enough collisions for every protocol interaction (cold fills, upgrades, recalls,
    // downgrades, ping-pong) to appear many times.
    for cores in 2..=8 {
        let mut rng = SimRng::new(0xD1FF_0000 + cores as u64);
        let trace: Vec<(usize, u64, AccessKind)> = (0..4000)
            .map(|_| {
                (
                    (rng.next_u64() % cores as u64) as usize,
                    rng.next_u64() % 48,
                    kind_of(rng.next_u64()),
                )
            })
            .collect();
        drive_trace(cores, CacheConfig::rocket_l1d(), &trace);
    }
}

#[test]
fn eviction_heavy_traces_stay_equivalent_on_a_tiny_cache() {
    // The tiny 2-set/2-way cache forces constant LRU evictions, exercising the directory's
    // Put-on-evict bookkeeping — the piece that keeps sharer bitsets precise.
    for cores in [2usize, 3, 5, 8] {
        let mut rng = SimRng::new(0xE71C_7000 + cores as u64);
        let trace: Vec<(usize, u64, AccessKind)> = (0..3000)
            .map(|_| {
                (
                    (rng.next_u64() % cores as u64) as usize,
                    rng.next_u64() % 24,
                    kind_of(rng.next_u64()),
                )
            })
            .collect();
        drive_trace(cores, CacheConfig::tiny(), &trace);
    }
}

#[test]
fn directed_sharing_patterns_are_equivalent() {
    // Hand-built scenarios hitting each protocol edge by name rather than by chance.
    let scenarios: [&[(usize, u64, AccessKind)]; 5] = [
        // Cold read then silent E->M upgrade, observed by a second core.
        &[(0, 1, AccessKind::Read), (0, 1, AccessKind::Write), (1, 1, AccessKind::Read)],
        // All cores share, then one upgrades (invalidation fan-out), then all re-read.
        &[
            (0, 2, AccessKind::Read),
            (1, 2, AccessKind::Read),
            (2, 2, AccessKind::Read),
            (3, 2, AccessKind::Read),
            (2, 2, AccessKind::Write),
            (0, 2, AccessKind::Read),
            (1, 2, AccessKind::Read),
            (3, 2, AccessKind::Read),
        ],
        // Dirty ping-pong between two cores (the Section V-B bouncing pattern).
        &[
            (0, 3, AccessKind::Atomic),
            (1, 3, AccessKind::Atomic),
            (0, 3, AccessKind::Atomic),
            (1, 3, AccessKind::Atomic),
        ],
        // Writer drained by a reader (M -> downgrade), then a third core writes (recall).
        &[
            (0, 4, AccessKind::Write),
            (1, 4, AccessKind::Read),
            (2, 4, AccessKind::Write),
            (0, 4, AccessKind::Read),
        ],
        // Upgrade race shape: two sharers, one upgrades, the other immediately re-writes.
        &[
            (0, 5, AccessKind::Read),
            (1, 5, AccessKind::Read),
            (0, 5, AccessKind::Write),
            (1, 5, AccessKind::Write),
        ],
    ];
    for trace in scenarios {
        drive_trace(4, CacheConfig::rocket_l1d(), trace);
    }
}

mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        /// Arbitrary traces over arbitrary machine sizes (2–8 cores) observe identical values
        /// through both models, with both models' invariants intact at every step.
        #[test]
        fn observed_values_match_between_models(
            cores in 2usize..=8,
            ops in proptest::collection::vec((0usize..8, 0u64..32, 0u8..3), 1..300),
        ) {
            let trace: Vec<(usize, u64, AccessKind)> = ops
                .into_iter()
                .map(|(core, line, k)| (core % cores, line, super::kind_of(k as u64)))
                .collect();
            drive_trace(cores, CacheConfig::tiny(), &trace);
        }
    }
}
