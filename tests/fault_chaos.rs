//! The chaos suite: end-to-end gates on the `tis-fault` layer (PR 6).
//!
//! Three properties are pinned here, each stated against full machine runs rather than unit
//! fixtures:
//!
//! 1. **Fault tolerance is functional identity.** Under any *bounded* fault schedule — drops
//!    and delays are always recovered by bounded retry, tracker losses are always resubmitted,
//!    no link is permanently dead — every workload completes, retires exactly the same task
//!    set as the fault-free run, and still satisfies the program's sequential semantics.
//!    Faults may only move cycles, never outcomes.
//! 2. **Unrecoverable faults are diagnosed, not hung.** A dead link with retries exhausted
//!    surfaces as [`EngineError::UnrecoverableFault`] naming the faulted link, the endpoints,
//!    the attempt count and the blocked task set — long before any watchdog heuristic fires.
//! 3. **Chaos replays.** The same `(seed, FaultConfig)` pair reproduces the *entire* execution
//!    report bit for bit; a different fault seed produces a genuinely different schedule.

use tis::bench::{Harness, Platform};
use tis::machine::{EngineError, FaultConfig, MemoryModel};
use tis::sim::SimRng;
use tis::taskmodel::{Dependence, Direction, Payload, ProgramBuilder, TaskProgram};

/// Deterministic pseudo-random program generator (mirrors `runtime_correctness.rs`): enough
/// dependence structure for wakeups, taskwaits and work stealing to all be on the line.
fn random_program(seed: u64, tasks: usize) -> TaskProgram {
    let mut rng = SimRng::new(seed);
    let mut b = ProgramBuilder::new(format!("chaos-{seed}"));
    for _ in 0..tasks {
        let ndeps = rng.below(4) as usize;
        let mut deps = Vec::new();
        let mut used = Vec::new();
        for _ in 0..ndeps {
            let addr = 0x6000_0000 + rng.below(12) * 64;
            if used.contains(&addr) {
                continue;
            }
            used.push(addr);
            let dir = match rng.below(3) {
                0 => Direction::In,
                1 => Direction::Out,
                _ => Direction::InOut,
            };
            deps.push(Dependence::new(addr, dir));
        }
        b.spawn(Payload::compute(rng.range(100, 3_000)), deps);
        if rng.chance(0.1) {
            b.taskwait();
        }
    }
    b.taskwait();
    b.build()
}

fn chaos_harness(fault: FaultConfig) -> Harness {
    Harness::with_cores(4)
        .with_memory_model(MemoryModel::directory_mesh_contended())
        .with_faults(fault)
}

/// Runs `program` fault-free and under `fault` on `platform`, asserting functional identity.
fn assert_fault_tolerant(platform: Platform, program: &TaskProgram, fault: FaultConfig) {
    let clean = chaos_harness(FaultConfig::none())
        .run(platform, program)
        .unwrap_or_else(|e| panic!("fault-free run failed on {}: {e}", platform.label()));
    let faulted = chaos_harness(fault)
        .run(platform, program)
        .unwrap_or_else(|e| panic!("recoverable schedule {} killed {}: {e}", fault.key(), platform.label()));
    assert_eq!(
        clean.tasks_retired,
        faulted.tasks_retired,
        "{} lost tasks under {}",
        platform.label(),
        fault.key()
    );
    // The same task *set* retired (assignment and timing are allowed to move).
    let mut a: Vec<_> = clean.records.iter().map(|r| r.task).collect();
    let mut b: Vec<_> = faulted.records.iter().map(|r| r.task).collect();
    a.sort_unstable();
    b.sort_unstable();
    assert_eq!(a, b, "{} retired a different task set under faults", platform.label());
    // And the faulted schedule still respects the program's sequential semantics.
    faulted
        .validate_against(program)
        .unwrap_or_else(|e| panic!("{} under {} violated semantics: {e}", platform.label(), fault.key()));
}

#[test]
fn the_canonical_recoverable_schedule_preserves_function_on_every_platform() {
    let program = random_program(0xC4A0, 48);
    for platform in Platform::ALL {
        assert_fault_tolerant(platform, &program, FaultConfig::recoverable());
    }
}

#[test]
fn dead_links_are_diagnosed_with_the_blocked_work_not_hung() {
    // Every mesh link dead: the first coherence message that needs a hop exhausts its retries
    // and the engine must convert that into a precise diagnosis instead of spinning until the
    // no-progress watchdog guesses.
    let fault = FaultConfig { dead_links: u32::MAX, ..FaultConfig::none() };
    let program = random_program(0xDEAD, 40);
    let err = chaos_harness(fault)
        .run(Platform::Phentos, &program)
        .expect_err("an all-dead mesh cannot complete a multi-core program");
    match err {
        EngineError::UnrecoverableFault { diagnosis, cycle, tasks_retired, tasks_blocked, runtime } => {
            assert_ne!(diagnosis.from, diagnosis.to, "a dead link joins two distinct routers");
            assert_eq!(
                diagnosis.attempts,
                fault.max_retries + 1,
                "the diagnosis must report the exhausted retry budget"
            );
            assert!(cycle >= diagnosis.cycle, "detection can only follow the fault");
            assert!(
                tasks_blocked > 0 || tasks_retired < program.task_count() as u64,
                "a fatal fault must leave work unfinished"
            );
            let rendered = EngineError::UnrecoverableFault {
                diagnosis,
                cycle,
                tasks_retired,
                tasks_blocked,
                runtime,
            }
            .to_string();
            assert!(rendered.contains("dead link"), "diagnosis must name the resource: {rendered}");
            assert!(rendered.contains("blocked"), "diagnosis must report blocked work: {rendered}");
        }
        other => panic!("expected an unrecoverable-fault diagnosis, got: {other}"),
    }
}

#[test]
fn a_fault_schedule_replays_bit_identically_and_seeds_matter() {
    let program = random_program(0x5EED, 48);
    let fault = FaultConfig::recoverable();
    let a = chaos_harness(fault).run(Platform::Phentos, &program).unwrap();
    let b = chaos_harness(fault).run(Platform::Phentos, &program).unwrap();
    // Replay: the whole report — records, per-core stats, every fault counter — is identical.
    assert_eq!(a, b, "the same (seed, FaultConfig) must replay the execution exactly");
    assert!(
        a.memory_stats.fault.drops + a.memory_stats.fault.delays > 0,
        "the recoverable schedule must actually fire for replay to mean anything"
    );

    // A different fault seed is a different storm: some observable must move.
    let reseeded = chaos_harness(FaultConfig { seed: fault.seed ^ 0x9E37_79B9, ..fault })
        .run(Platform::Phentos, &program)
        .unwrap();
    assert_eq!(a.tasks_retired, reseeded.tasks_retired, "function never moves");
    assert!(
        (a.total_cycles, &a.memory_stats.fault) != (reseeded.total_cycles, &reseeded.memory_stats.fault),
        "a different fault seed must produce a different fault schedule"
    );
}

mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        /// Any bounded-drop fault schedule — arbitrary rates and retry tuning, no dead links —
        /// lets every workload complete functionally identical to the fault-free run.
        #[test]
        fn bounded_fault_schedules_preserve_function(
            fault_seed in 1u64..u64::MAX,
            program_seed in 0u64..1024,
            drop_ppm in 0u32..150_000,
            delay_ppm in 0u32..150_000,
            tracker_loss_ppm in 0u32..30_000,
            max_delay in 1u64..64,
            retries in 1u32..4,
            timeout in 16u64..128,
            backoff in 0u64..64,
            phentos in proptest::bool::ANY,
        ) {
            let fault = FaultConfig {
                seed: fault_seed,
                drop_ppm,
                delay_ppm,
                max_delay_cycles: max_delay,
                tracker_loss_ppm,
                max_retries: retries,
                retry_timeout: timeout,
                retry_backoff: backoff,
                ..FaultConfig::none()
            };
            let platform = if phentos { Platform::Phentos } else { Platform::NanosSw };
            let program = random_program(program_seed, 32);
            if fault.engages() {
                assert_fault_tolerant(platform, &program, fault);
            } else {
                // All rates drew zero: degenerates to the zero-rate exactness property.
                let clean = chaos_harness(FaultConfig::none()).run(platform, &program).unwrap();
                let z = chaos_harness(FaultConfig::zero_rate()).run(platform, &program).unwrap();
                prop_assert_eq!(clean, z);
            }
        }
    }
}
