//! Golden pins for the paper-figure reproductions.
//!
//! Every PR so far has claimed "fig07/fig09 cycle counts bit-identical" and verified it by
//! hand; this test makes that claim a tier-1 regression check. The simulator is fully
//! deterministic, so these are exact `u64` equality assertions, not tolerances: **any** change
//! to the default (snooping-bus) model, the cost model, the runtimes or the workload
//! generators that moves a single cycle fails here.
//!
//! # Re-pinning
//!
//! The constant tables below are the *single* place to update after an intentional model
//! change. Run
//!
//! ```text
//! TIS_REPIN=1 cargo test --test figure_pins -- --nocapture
//! ```
//!
//! and paste the printed tables over `FIG07_PINS` / `FIG09_PINS`, then say in the PR *why* the
//! numbers moved. A mismatching run prints the same tables in its panic message.

use tis::bench::{figure7_workloads, Harness, Platform};
use tis::machine::{FaultConfig, MachineConfig, MemoryModel};
use tis::workloads::entry_for_cores;

/// Task count of the pinned Figure 7 microbenchmarks (matches the fig07 bench target, so the
/// pinned totals divided by 150 are exactly the printed overheads).
const FIG07_TASKS: usize = 150;

/// Pinned Figure 7 makespans: `(platform key, workload label, total cycles)` of a single-core
/// run, in `Platform::ALL` × `figure7_workloads` order.
const FIG07_PINS: &[(&str, &str, u64)] = &[
    ("phentos", "Task-Free 1 dep", 16399),
    ("phentos", "Task-Free 15 deps", 23679),
    ("phentos", "Task-Chain 1 dep", 24296),
    ("phentos", "Task-Chain 15 deps", 31946),
    ("nanos-rv", "Task-Free 1 dep", 1767567),
    ("nanos-rv", "Task-Free 15 deps", 1835649),
    ("nanos-rv", "Task-Chain 1 dep", 1767567),
    ("nanos-rv", "Task-Chain 15 deps", 1771767),
    ("nanos-axi", "Task-Free 1 dep", 2276817),
    ("nanos-axi", "Task-Free 15 deps", 2547912),
    ("nanos-axi", "Task-Chain 1 dep", 2276817),
    ("nanos-axi", "Task-Chain 15 deps", 2465817),
    ("nanos-sw", "Task-Free 1 dep", 3781155),
    ("nanos-sw", "Task-Free 15 deps", 14850832),
    ("nanos-sw", "Task-Chain 1 dep", 3777613),
    ("nanos-sw", "Task-Chain 15 deps", 14847428),
];

/// The Figure 9 catalog rows pinned here: one entry per benchmark family, at the paper's
/// 8-core configuration, across the three Figure 9 platforms.
const FIG09_ENTRIES: &[(&str, &str)] = &[
    ("blackscholes", "4K B64"),
    ("jacobi", "N128 B1"),
    ("sparselu", "N32 M4"),
    ("stream-barr", "64"),
    ("stream-deps", "64"),
];

/// Pinned Figure 9 makespans: `(benchmark, input, platform key, total cycles)` at 8 cores, in
/// `FIG09_ENTRIES` × `Platform::FIGURE9` order.
const FIG09_PINS: &[(&str, &str, &str, u64)] = &[
    ("blackscholes", "4K B64", "nanos-sw", 1437297),
    ("blackscholes", "4K B64", "nanos-rv", 363061),
    ("blackscholes", "4K B64", "phentos", 187302),
    ("jacobi", "N128 B1", "nanos-sw", 38284268),
    ("jacobi", "N128 B1", "nanos-rv", 5132823),
    ("jacobi", "N128 B1", "phentos", 231582),
    ("sparselu", "N32 M4", "nanos-sw", 5027313),
    ("sparselu", "N32 M4", "nanos-rv", 896277),
    ("sparselu", "N32 M4", "phentos", 8205),
    ("stream-barr", "64", "nanos-sw", 30420069),
    ("stream-barr", "64", "nanos-rv", 5542192),
    ("stream-barr", "64", "phentos", 1386176),
    ("stream-deps", "64", "nanos-sw", 30129176),
    ("stream-deps", "64", "nanos-rv", 5140053),
    ("stream-deps", "64", "phentos", 1316243),
];

/// Pinned Figure 7 makespans under `MemoryModel::directory_mesh()` (the ideal, contention-free
/// NoC). These guard the *other* model's latency path: any change to the directory protocol,
/// the mesh geometry, or the `NocContention::Ideal` message pricing that moves a single cycle
/// fails here — in particular, adding contention modelling must leave the `Ideal` fallback
/// bit-identical.
const FIG07_DIR_MESH_PINS: &[(&str, &str, u64)] = &[
    ("phentos", "Task-Free 1 dep", 18527),
    ("phentos", "Task-Free 15 deps", 27907),
    ("phentos", "Task-Chain 1 dep", 26424),
    ("phentos", "Task-Chain 15 deps", 36174),
    ("nanos-rv", "Task-Free 1 dep", 1772019),
    ("nanos-rv", "Task-Free 15 deps", 1840101),
    ("nanos-rv", "Task-Chain 1 dep", 1772019),
    ("nanos-rv", "Task-Chain 15 deps", 1776219),
    ("nanos-axi", "Task-Free 1 dep", 2281269),
    ("nanos-axi", "Task-Free 15 deps", 2552364),
    ("nanos-axi", "Task-Chain 1 dep", 2281269),
    ("nanos-axi", "Task-Chain 15 deps", 2470269),
    ("nanos-sw", "Task-Free 1 dep", 3787791),
    ("nanos-sw", "Task-Free 15 deps", 14891054),
    ("nanos-sw", "Task-Chain 1 dep", 3782093),
    ("nanos-sw", "Task-Chain 15 deps", 14885578),
];

/// Pinned Figure 9 makespans under `MemoryModel::directory_mesh()` at 8 cores.
const FIG09_DIR_MESH_PINS: &[(&str, &str, &str, u64)] = &[
    ("blackscholes", "4K B64", "nanos-sw", 1454419),
    ("blackscholes", "4K B64", "nanos-rv", 362147),
    ("blackscholes", "4K B64", "phentos", 187989),
    ("jacobi", "N128 B1", "nanos-sw", 38441305),
    ("jacobi", "N128 B1", "nanos-rv", 5168411),
    ("jacobi", "N128 B1", "phentos", 240410),
    ("sparselu", "N32 M4", "nanos-sw", 5060106),
    ("sparselu", "N32 M4", "nanos-rv", 893859),
    ("sparselu", "N32 M4", "phentos", 12107),
    ("stream-barr", "64", "nanos-sw", 30550935),
    ("stream-barr", "64", "nanos-rv", 5653666),
    ("stream-barr", "64", "phentos", 1386363),
    ("stream-deps", "64", "nanos-sw", 30278345),
    ("stream-deps", "64", "nanos-rv", 5175350),
    ("stream-deps", "64", "phentos", 1316409),
];

fn fig07_measured_on_faulted(model: MemoryModel, fault: FaultConfig) -> Vec<(String, String, u64)> {
    let prototype = Harness::paper_prototype().with_memory_model(model).with_faults(fault);
    let single = Harness {
        machine: MachineConfig { cores: 1, ..prototype.machine },
        ..prototype
    };
    let mut out = Vec::new();
    for platform in Platform::ALL {
        for (label, program) in figure7_workloads(FIG07_TASKS) {
            let report = single
                .run(platform, &program)
                .unwrap_or_else(|e| panic!("fig07 {label} on {}: {e}", platform.label()));
            out.push((platform.key().to_string(), label.to_string(), report.total_cycles));
        }
    }
    out
}

fn fig07_measured_on(model: MemoryModel) -> Vec<(String, String, u64)> {
    fig07_measured_on_faulted(model, FaultConfig::none())
}

fn fig07_measured() -> Vec<(String, String, u64)> {
    fig07_measured_on(MemoryModel::SnoopBus)
}

fn fig09_measured_on_faulted(
    model: MemoryModel,
    fault: FaultConfig,
) -> Vec<(String, String, String, u64)> {
    let harness = Harness::paper_prototype().with_memory_model(model).with_faults(fault);
    let mut out = Vec::new();
    for &(benchmark, input) in FIG09_ENTRIES {
        let w = entry_for_cores(benchmark, input, harness.cores())
            .unwrap_or_else(|| panic!("no catalog entry '{benchmark} {input}'"));
        for platform in Platform::FIGURE9 {
            let report = harness
                .run(platform, &w.program)
                .unwrap_or_else(|e| panic!("fig09 {benchmark} {input} on {}: {e}", platform.label()));
            out.push((
                benchmark.to_string(),
                input.to_string(),
                platform.key().to_string(),
                report.total_cycles,
            ));
        }
    }
    out
}

fn fig09_measured_on(model: MemoryModel) -> Vec<(String, String, String, u64)> {
    fig09_measured_on_faulted(model, FaultConfig::none())
}

fn fig09_measured() -> Vec<(String, String, String, u64)> {
    fig09_measured_on(MemoryModel::SnoopBus)
}

fn render_fig07(rows: &[(String, String, u64)]) -> String {
    let mut s = String::from("const FIG07_PINS: &[(&str, &str, u64)] = &[\n");
    for (p, w, c) in rows {
        s.push_str(&format!("    (\"{p}\", \"{w}\", {c}),\n"));
    }
    s.push_str("];");
    s
}

fn render_fig09(rows: &[(String, String, String, u64)]) -> String {
    let mut s = String::from("const FIG09_PINS: &[(&str, &str, &str, u64)] = &[\n");
    for (b, i, p, c) in rows {
        s.push_str(&format!("    (\"{b}\", \"{i}\", \"{p}\", {c}),\n"));
    }
    s.push_str("];");
    s
}

fn repin_requested() -> bool {
    std::env::var_os("TIS_REPIN").is_some_and(|v| !v.is_empty())
}

#[test]
fn fig07_cycle_counts_are_pinned() {
    let measured = fig07_measured();
    if repin_requested() {
        println!("// paste into tests/figure_pins.rs:\n{}", render_fig07(&measured));
        return;
    }
    let current: Vec<(&str, &str, u64)> =
        measured.iter().map(|(p, w, c)| (p.as_str(), w.as_str(), *c)).collect();
    assert_eq!(
        current.as_slice(),
        FIG07_PINS,
        "Figure 7 cycle counts moved. If intentional, re-pin (see module docs) with:\n\n{}\n",
        render_fig07(&measured)
    );
}

#[test]
fn fig09_cycle_counts_are_pinned() {
    let measured = fig09_measured();
    if repin_requested() {
        println!("// paste into tests/figure_pins.rs:\n{}", render_fig09(&measured));
        return;
    }
    let current: Vec<(&str, &str, &str, u64)> = measured
        .iter()
        .map(|(b, i, p, c)| (b.as_str(), i.as_str(), p.as_str(), *c))
        .collect();
    assert_eq!(
        current.as_slice(),
        FIG09_PINS,
        "Figure 9 cycle counts moved. If intentional, re-pin (see module docs) with:\n\n{}\n",
        render_fig09(&measured)
    );
}

#[test]
fn fig07_cycle_counts_are_pinned_under_ideal_directory_mesh() {
    let measured = fig07_measured_on(MemoryModel::directory_mesh());
    if repin_requested() {
        println!(
            "// paste into tests/figure_pins.rs:\n{}",
            render_fig07(&measured).replace("FIG07_PINS", "FIG07_DIR_MESH_PINS")
        );
        return;
    }
    let current: Vec<(&str, &str, u64)> =
        measured.iter().map(|(p, w, c)| (p.as_str(), w.as_str(), *c)).collect();
    assert_eq!(
        current.as_slice(),
        FIG07_DIR_MESH_PINS,
        "Figure 7 cycle counts moved under the ideal directory/NoC model. If intentional, \
         re-pin (see module docs) with:\n\n{}\n",
        render_fig07(&measured).replace("FIG07_PINS", "FIG07_DIR_MESH_PINS")
    );
}

#[test]
fn fig09_cycle_counts_are_pinned_under_ideal_directory_mesh() {
    let measured = fig09_measured_on(MemoryModel::directory_mesh());
    if repin_requested() {
        println!(
            "// paste into tests/figure_pins.rs:\n{}",
            render_fig09(&measured).replace("FIG09_PINS", "FIG09_DIR_MESH_PINS")
        );
        return;
    }
    let current: Vec<(&str, &str, &str, u64)> = measured
        .iter()
        .map(|(b, i, p, c)| (b.as_str(), i.as_str(), p.as_str(), *c))
        .collect();
    assert_eq!(
        current.as_slice(),
        FIG09_DIR_MESH_PINS,
        "Figure 9 cycle counts moved under the ideal directory/NoC model. If intentional, \
         re-pin (see module docs) with:\n\n{}\n",
        render_fig09(&measured).replace("FIG09_PINS", "FIG09_DIR_MESH_PINS")
    );
}

#[test]
fn fig07_pins_survive_a_zero_rate_fault_schedule() {
    // PR 6's zero-rate exactness gate at figure granularity: a fully-engaged fault layer whose
    // schedule never fires must leave every pinned Figure 7 cycle count untouched, on both the
    // snooping bus (tracker-loss path armed) and the ideal mesh (message-fault path armed).
    if repin_requested() {
        return; // repin output comes from the fault-free tests; these must match them.
    }
    for (model, pins, label) in [
        (MemoryModel::SnoopBus, FIG07_PINS, "snoop bus"),
        (MemoryModel::directory_mesh(), FIG07_DIR_MESH_PINS, "ideal directory mesh"),
    ] {
        let measured = fig07_measured_on_faulted(model, FaultConfig::zero_rate());
        let current: Vec<(&str, &str, u64)> =
            measured.iter().map(|(p, w, c)| (p.as_str(), w.as_str(), *c)).collect();
        assert_eq!(
            current.as_slice(),
            pins,
            "the zero-rate fault layer moved pinned Figure 7 cycles on the {label}"
        );
    }
}

#[test]
fn fig09_pins_survive_a_zero_rate_fault_schedule() {
    // Same gate at the paper's 8-core scale, where the mesh actually routes coherence traffic:
    // zero-rate fault arithmetic must be bit-invisible in every pinned Figure 9 cell.
    if repin_requested() {
        return;
    }
    for (model, pins, label) in [
        (MemoryModel::SnoopBus, FIG09_PINS, "snoop bus"),
        (MemoryModel::directory_mesh(), FIG09_DIR_MESH_PINS, "ideal directory mesh"),
    ] {
        let measured = fig09_measured_on_faulted(model, FaultConfig::zero_rate());
        let current: Vec<(&str, &str, &str, u64)> = measured
            .iter()
            .map(|(b, i, p, c)| (b.as_str(), i.as_str(), p.as_str(), *c))
            .collect();
        assert_eq!(
            current.as_slice(),
            pins,
            "the zero-rate fault layer moved pinned Figure 9 cycles on the {label}"
        );
    }
}

#[test]
fn pins_follow_the_papers_platform_ordering() {
    // Structural sanity on the pinned data itself (catches hand-edited pins): within each
    // fig07 workload, Phentos is fastest and Nanos-SW slowest, mirroring Figure 7's ordering.
    for (_, workload, phentos_cycles) in FIG07_PINS.iter().filter(|(p, _, _)| *p == "phentos") {
        let sw = FIG07_PINS
            .iter()
            .find(|(p, w, _)| *p == "nanos-sw" && w == workload)
            .expect("every workload is pinned for every platform");
        assert!(
            sw.2 > *phentos_cycles,
            "{workload}: Nanos-SW ({}) must be slower than Phentos ({phentos_cycles})",
            sw.2
        );
    }
    assert_eq!(FIG07_PINS.len(), 16, "4 platforms x 4 microbenchmarks");
    assert_eq!(FIG09_PINS.len(), FIG09_ENTRIES.len() * 3, "entries x 3 platforms");
    assert_eq!(FIG07_DIR_MESH_PINS.len(), FIG07_PINS.len(), "mesh pins cover the same grid");
    assert_eq!(FIG09_DIR_MESH_PINS.len(), FIG09_PINS.len(), "mesh pins cover the same grid");
}
