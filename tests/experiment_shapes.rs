//! Shape tests for the paper's experiments: without re-running the full catalog (that is what
//! the bench targets are for), check that the qualitative results the paper reports hold on
//! representative subsets — orderings, crossover behaviour and the resource claim.

use tis_bench::{
    evaluate_workload, figure7_workloads, geomean_ratio, measure_lifetime_overhead, Harness, Platform,
};
use tis_core::ResourceReport;
use tis_machine::mtt_speedup_bound;
use tis_workloads::blackscholes::blackscholes;
use tis_workloads::jacobi::jacobi;
use tis_workloads::sparselu::sparselu;
use tis_workloads::WorkloadInstance;

/// Figure 7's ordering: Phentos << Nanos-RV < Nanos-AXI < Nanos-SW on every microbenchmark, and
/// the magnitudes stay in the paper's ranges.
#[test]
fn figure7_overhead_ordering_and_ranges() {
    let harness = Harness::paper_prototype();
    for (name, program) in figure7_workloads(80) {
        let phentos = measure_lifetime_overhead(&harness, Platform::Phentos, &program);
        let rv = measure_lifetime_overhead(&harness, Platform::NanosRv, &program);
        let axi = measure_lifetime_overhead(&harness, Platform::NanosAxi, &program);
        let sw = measure_lifetime_overhead(&harness, Platform::NanosSw, &program);
        assert!(phentos < rv / 5.0, "{name}: phentos {phentos:.0} should be far below nanos-rv {rv:.0}");
        assert!(rv < axi, "{name}: rv {rv:.0} vs axi {axi:.0}");
        assert!(axi < sw, "{name}: axi {axi:.0} vs sw {sw:.0}");
        assert!(phentos < 2_000.0, "{name}: phentos overhead {phentos:.0} out of range");
        assert!((5_000.0..40_000.0).contains(&rv), "{name}: nanos-rv overhead {rv:.0} out of range");
        assert!(sw > 15_000.0, "{name}: nanos-sw overhead {sw:.0} out of range");
    }
}

/// Figure 7, dependence scaling: Nanos-SW's overhead grows steeply from 1 to 15 dependences
/// (25k -> 99k in the paper); the hardware-assisted paths grow only mildly.
#[test]
fn figure7_dependence_scaling() {
    let harness = Harness::paper_prototype();
    let w = figure7_workloads(80);
    let sw_1 = measure_lifetime_overhead(&harness, Platform::NanosSw, &w[0].1);
    let sw_15 = measure_lifetime_overhead(&harness, Platform::NanosSw, &w[1].1);
    let ph_1 = measure_lifetime_overhead(&harness, Platform::Phentos, &w[0].1);
    let ph_15 = measure_lifetime_overhead(&harness, Platform::Phentos, &w[1].1);
    assert!(sw_15 / sw_1 > 2.5, "nanos-sw should blow up with 15 deps: {sw_1:.0} -> {sw_15:.0}");
    assert!(ph_15 / ph_1 < 2.5, "phentos should grow mildly with 15 deps: {ph_1:.0} -> {ph_15:.0}");
}

/// Figure 6's landmarks: with the measured Task-Chain(1) overheads, Phentos' MTT bound is already
/// meaningful at 1000-cycle tasks and saturates at 8x by 10k-cycle tasks, while the software
/// platforms stay below 1x there.
#[test]
fn figure6_mtt_landmarks() {
    let harness = Harness::paper_prototype();
    let chain = &figure7_workloads(80)[2].1;
    let phentos = measure_lifetime_overhead(&harness, Platform::Phentos, chain);
    let sw = measure_lifetime_overhead(&harness, Platform::NanosSw, chain);
    let rv = measure_lifetime_overhead(&harness, Platform::NanosRv, chain);
    assert!(mtt_speedup_bound(1_000.0, phentos, 8) > 1.5);
    assert!(mtt_speedup_bound(10_000.0, phentos, 8) >= 7.9);
    assert!(mtt_speedup_bound(10_000.0, sw, 8) < 1.0);
    assert!(mtt_speedup_bound(10_000.0, rv, 8) < 1.5);
}

/// Figure 9's qualitative content on a representative subset: the hardware-assisted runtimes
/// dominate the software baseline in geomean, Phentos dominates Nanos-RV, and the advantage is
/// largest on the fine-grained inputs.
#[test]
fn figure9_subset_orderings() {
    let harness = Harness::paper_prototype();
    let subset = [WorkloadInstance { benchmark: "blackscholes", input: "4K B8".into(), program: blackscholes(4 * 1024, 8) },
        WorkloadInstance { benchmark: "blackscholes", input: "4K B256".into(), program: blackscholes(4 * 1024, 256) },
        WorkloadInstance { benchmark: "jacobi", input: "N128 B1".into(), program: jacobi(128, 1) },
        WorkloadInstance { benchmark: "sparselu", input: "NB8 M4".into(), program: sparselu(8, 4) }];
    let results: Vec<_> = subset.iter().map(|w| evaluate_workload(&harness, w, &Platform::FIGURE9)).collect();
    let rv_over_sw = geomean_ratio(&results, Platform::NanosRv, Platform::NanosSw).unwrap();
    let ph_over_sw = geomean_ratio(&results, Platform::Phentos, Platform::NanosSw).unwrap();
    let ph_over_rv = geomean_ratio(&results, Platform::Phentos, Platform::NanosRv).unwrap();
    assert!(rv_over_sw > 1.2, "Nanos-RV should clearly beat Nanos-SW, got {rv_over_sw:.2}");
    assert!(ph_over_sw > rv_over_sw, "Phentos should beat Nanos-RV's advantage, got {ph_over_sw:.2}");
    assert!(ph_over_rv > 1.2, "Phentos should clearly beat Nanos-RV, got {ph_over_rv:.2}");

    // Granularity effect: on the finest input the Phentos advantage is larger than on the
    // coarsest one.
    let fine = results[0].ratio(Platform::Phentos, Platform::NanosSw).unwrap();
    let coarse = results[1].ratio(Platform::Phentos, Platform::NanosSw).unwrap();
    assert!(fine > coarse, "advantage must shrink with granularity: fine {fine:.2} vs coarse {coarse:.2}");
}

/// Table II's headline: the scheduling subsystem occupies less than 2% of the SoC.
#[test]
fn table2_resource_claim() {
    let report = ResourceReport::paper_prototype();
    assert!(report.scheduling_fraction() < 0.02);
    assert_eq!(report.rows()[0].cells, 384_000);
}
