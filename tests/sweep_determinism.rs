//! Pins the `tis-exp` determinism invariant: a sweep's report — down to the rendered JSON
//! bytes — is identical no matter how many host workers evaluate it, and identical across
//! repeated runs. This is what makes `BENCH_sweep_<name>.json` artifacts comparable between CI runs
//! and makes the parallel runner safe to use for anything that feeds the bench-diff tool.

use tis::bench::Platform;
use tis::exp::{
    run_sweep_with_workers, FaultConfig, MemoryModel, Sweep, SynthFamily, SynthSpec, WorkloadSpec,
};
use tis::picos::TrackerConfig;

fn reference_sweep() -> Sweep {
    Sweep::new("determinism")
        .over_cores([1, 4, 16])
        .over_memory_models([
            MemoryModel::SnoopBus,
            MemoryModel::directory_mesh(),
            MemoryModel::directory_mesh_contended(),
        ])
        .over_platforms([Platform::Phentos, Platform::NanosSw])
        .over_trackers([TrackerConfig::default(), TrackerConfig::new(32, 256)])
        .with_workload(WorkloadSpec::synth(SynthSpec {
            family: SynthFamily::ErdosRenyi { density: 0.08 },
            tasks: 48,
            task_cycles: 5_000,
            jitter: 0.5,
        }))
        .with_workload(WorkloadSpec::synth(SynthSpec::uniform(
            SynthFamily::Tree { arity: 2 },
            40,
            8_000,
        )))
}

#[test]
fn worker_count_never_changes_the_report() {
    let sweep = reference_sweep();
    let baseline = run_sweep_with_workers(&sweep, 1);
    assert_eq!(baseline.cells.len(), sweep.cell_count());
    let baseline_json = baseline.to_json().render();
    for workers in [2, 3, 8, 64] {
        let parallel = run_sweep_with_workers(&sweep, workers);
        assert_eq!(
            baseline_json,
            parallel.to_json().render(),
            "{workers}-worker sweep diverged from the sequential run"
        );
        assert_eq!(baseline, parallel);
    }
}

#[test]
fn repeated_runs_are_bit_identical_and_seeds_matter() {
    let sweep = reference_sweep();
    let a = run_sweep_with_workers(&sweep, 4);
    let b = run_sweep_with_workers(&sweep, 4);
    assert_eq!(a.to_json().render(), b.to_json().render());

    // A different seed regenerates the synthetic programs: cell shape survives, numbers move.
    let reseeded = reference_sweep().with_seed(0xBAD_5EED).run_parallel(4);
    assert_eq!(reseeded.cells.len(), a.cells.len());
    assert!(
        a.cells.iter().zip(&reseeded.cells).any(|(x, y)| x.total_cycles != y.total_cycles),
        "a different seed must produce different synthetic workloads"
    );
}

#[test]
fn grid_order_is_workload_cores_memory_tracker_platform() {
    let report = reference_sweep().run_parallel(8);
    // Spot-check the documented grid order on the first platform-fastest stride.
    assert_eq!(report.cells[0].platform, Platform::Phentos);
    assert_eq!(report.cells[1].platform, Platform::NanosSw);
    assert_eq!(report.cells[0].tracker, TrackerConfig::default());
    assert_eq!(report.cells[2].tracker, TrackerConfig::new(32, 256));
    assert_eq!(report.cells[0].memory, MemoryModel::SnoopBus);
    assert_eq!(report.cells[4].memory, MemoryModel::directory_mesh());
    assert_eq!(report.cells[8].memory, MemoryModel::directory_mesh_contended());
    assert_eq!(report.cells[0].cores, 1);
    assert_eq!(report.cells[12].cores, 4);
    let per_workload = 3 * 3 * 2 * 2;
    assert!(report.cells[0].workload.starts_with("synth-er"));
    assert!(report.cells[per_workload].workload.starts_with("synth-tree"));
}

/// A sweep with an engaging fault axis: the chaos analogue of [`reference_sweep`].
fn fault_sweep() -> Sweep {
    Sweep::new("fault-determinism")
        .over_cores([4])
        .over_memory_models([MemoryModel::directory_mesh_contended()])
        .over_platforms([Platform::Phentos])
        .over_faults([FaultConfig::none(), FaultConfig::zero_rate(), FaultConfig::recoverable()])
        .with_workload(WorkloadSpec::synth(SynthSpec {
            family: SynthFamily::ErdosRenyi { density: 0.08 },
            tasks: 48,
            task_cycles: 5_000,
            jitter: 0.5,
        }))
        .with_workload(WorkloadSpec::synth(SynthSpec::uniform(
            SynthFamily::Tree { arity: 2 },
            40,
            8_000,
        )))
}

#[test]
fn fault_schedules_replay_identically_at_any_worker_count() {
    // The tentpole replay guarantee: every injected fault is a pure function of
    // (sweep seed, FaultConfig, cell index), so a chaos sweep's report — including every
    // fault counter and recovery latency — is byte-identical at 1, 2 and 8 workers.
    let sweep = fault_sweep();
    let baseline = run_sweep_with_workers(&sweep, 1);
    assert_eq!(baseline.cells.len(), sweep.cell_count());
    let baseline_json = baseline.to_json().render();
    for workers in [2, 8] {
        let parallel = run_sweep_with_workers(&sweep, workers);
        assert_eq!(
            baseline_json,
            parallel.to_json().render(),
            "{workers}-worker chaos sweep diverged from the sequential run"
        );
        assert_eq!(baseline, parallel);
    }
    // And across repeated runs: chaos is replayable, not merely parallel-safe.
    assert_eq!(baseline_json, run_sweep_with_workers(&sweep, 4).to_json().render());
}

#[test]
fn zero_rate_fault_cells_match_fault_free_cells_exactly() {
    let report = fault_sweep().run_parallel(4);
    // Grid order: per workload, the fault axis enumerates none ▸ zero-rate ▸ recoverable.
    for group in report.cells.chunks(3) {
        let (clean, zero, faulted) = (&group[0], &group[1], &group[2]);
        assert!(!clean.fault.engages());
        assert!(zero.fault.engages() && faulted.fault.engages());
        assert_eq!(
            clean.total_cycles, zero.total_cycles,
            "{}: an engaged-but-silent fault layer must cost nothing",
            clean.workload
        );
        assert_eq!(zero.fault_drops + zero.fault_delays + zero.fault_tracker_losses, 0);
        // The recoverable schedule ran the same work (functional identity), only slower.
        assert_eq!(clean.tasks, faulted.tasks);
        assert_eq!(clean.serial_cycles, faulted.serial_cycles);
        assert!(faulted.total_cycles >= clean.total_cycles);
        assert!(
            faulted.fault_drops + faulted.fault_delays > 0,
            "{}: the recoverable schedule must actually inject faults",
            faulted.workload
        );
    }
}

#[test]
fn memory_models_share_one_program_but_report_different_latencies() {
    // Within one (workload, cores, tracker, platform) point, the two memory-model cells must
    // describe the same program (same tasks, same serial baseline) — the axis changes the
    // interconnect, never the workload — while mean memory latency genuinely moves.
    let report = reference_sweep().run_parallel(4);
    let mut compared = 0;
    let mut contention_moved = 0;
    for group in report.cells.chunks(12) {
        // Grid order: 4 (tracker x platform) cells on SnoopBus, the same 4 on the ideal mesh,
        // then the same 4 on the contended mesh.
        for i in 0..4 {
            let (bus, mesh, contended) = (&group[i], &group[i + 4], &group[i + 8]);
            assert_eq!(bus.memory, MemoryModel::SnoopBus);
            assert_eq!(mesh.memory, MemoryModel::directory_mesh());
            assert_eq!(contended.memory, MemoryModel::directory_mesh_contended());
            for cell in [mesh, contended] {
                assert_eq!(bus.workload, cell.workload);
                assert_eq!(bus.cores, cell.cores);
                assert_eq!(bus.platform, cell.platform);
                assert_eq!(bus.tracker, cell.tracker);
                assert_eq!(bus.tasks, cell.tasks, "the axis must not perturb workload generation");
                assert_eq!(bus.serial_cycles, cell.serial_cycles);
            }
            if bus.mean_mem_latency != mesh.mean_mem_latency {
                compared += 1;
            }
            if contended.noc_link_wait_cycles > 0 {
                contention_moved += 1;
            }
            assert_eq!(bus.noc_link_wait_cycles, 0, "the bus has no NoC links");
            assert_eq!(mesh.noc_link_wait_cycles, 0, "the ideal mesh never queues");
        }
    }
    assert!(compared > 0, "the interconnect swap must move at least some memory latencies");
    assert!(contention_moved > 0, "the contended mesh must observe link queueing somewhere");
}

#[test]
fn streamed_runs_are_bit_identical_to_materialized_runs_for_every_streamable_family() {
    // The streaming ≡ materialized differential: with a window the run never fills, a
    // StreamingSynth source must produce an ExecutionReport equal bit-for-bit (records, core
    // stats, fabric stats, residency high-water mark — the full struct) to running the
    // materialized program built from the same spec and seed, on every platform. The streamed
    // path shares no program object with the materialized one; equality here means the pulled
    // op stream, and everything the machine did with it, matched exactly.
    use tis::bench::Harness;
    use tis::exp::StreamingSynth;
    use tis::sim::SimRng;

    let harness = Harness::paper_prototype();
    let seed = 0x00D1_FFE6;
    for family in [
        SynthFamily::Chain,
        SynthFamily::ForkJoin { width: 7 },
        SynthFamily::ErdosRenyi { density: 0.08 },
    ] {
        let spec = SynthSpec { family, tasks: 240, task_cycles: 3_000, jitter: 0.3 };
        let program = spec.generate(&mut SimRng::new(seed));
        for platform in
            [Platform::Phentos, Platform::NanosRv, Platform::NanosAxi, Platform::NanosSw]
        {
            let materialized =
                harness.run(platform, &program).expect("materialized run must complete");
            let source = StreamingSynth::new(spec, spec.tasks, SimRng::new(seed));
            let streamed = harness
                .run_source(platform, Box::new(source), true)
                .expect("streamed run must complete");
            assert_eq!(
                streamed,
                materialized,
                "{} on {:?}: streamed report diverged from its materialized twin",
                spec.name(),
                platform
            );
        }
    }
}
