//! Property-based cross-crate tests: arbitrary (small) task programs, arbitrary machine shapes —
//! the full stack must preserve the paradigm's invariants.

use proptest::prelude::*;
use tis_bench::{Harness, Platform};
use tis_taskmodel::{Dependence, Direction, Payload, ProgramBuilder, TaskProgram};

fn arbitrary_program() -> impl Strategy<Value = TaskProgram> {
    let task = (
        proptest::collection::vec((0u64..8, 0u8..3), 0..4),
        50u64..2_000,
        proptest::bool::weighted(0.15),
    );
    proptest::collection::vec(task, 1..25).prop_map(|tasks| {
        let mut b = ProgramBuilder::new("prop");
        for (deps, cycles, wait) in tasks {
            let mut seen = std::collections::HashSet::new();
            let deps: Vec<Dependence> = deps
                .into_iter()
                .filter(|(a, _)| seen.insert(*a))
                .map(|(a, d)| {
                    let dir = match d {
                        0 => Direction::In,
                        1 => Direction::Out,
                        _ => Direction::InOut,
                    };
                    Dependence::new(0x7700_0000 + a * 64, dir)
                })
                .collect();
            b.spawn(Payload::compute(cycles), deps);
            if wait {
                b.taskwait();
            }
        }
        b.taskwait();
        b.build()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The tightly-integrated system (Phentos + RoCC Picos) schedules any program correctly on
    /// any small machine, and its makespan is bounded below by the critical path and above by
    /// the serial time plus bounded overhead.
    #[test]
    fn phentos_respects_semantics_and_bounds(program in arbitrary_program(), cores in 1usize..5) {
        let harness = Harness::with_cores(cores);
        let report = harness.run(Platform::Phentos, &program).expect("no deadlock");
        prop_assert_eq!(report.tasks_retired as usize, program.task_count());
        if let Err(e) = report.validate_against(&program) {
            return Err(TestCaseError::fail(format!("schedule invalid: {e}")));
        }

        let weights: Vec<f64> = program.tasks().map(|t| t.payload.compute_cycles as f64).collect();
        let critical = program.reference_graph().stats(&weights).critical_path_weight;
        prop_assert!(report.total_cycles as f64 >= critical, "makespan below the critical path");

        let serial = harness.serial_cycles(&program);
        // Generous upper bound: serial time plus a few thousand cycles of overhead per task.
        let bound = serial + 5_000 * program.task_count() as u64 + 50_000;
        prop_assert!(report.total_cycles <= bound, "makespan {} exceeds sanity bound {}", report.total_cycles, bound);
    }

    /// The Nanos-SW software runtime agrees with the same semantics (it is slower, not wrong).
    #[test]
    fn nanos_sw_respects_semantics(program in arbitrary_program()) {
        let harness = Harness::with_cores(2);
        let report = harness.run(Platform::NanosSw, &program).expect("no deadlock");
        prop_assert_eq!(report.tasks_retired as usize, program.task_count());
        prop_assert!(report.validate_against(&program).is_ok());
    }
}

/// Property tests for the `tis-exp` synthetic graph generators: arbitrary specs must produce
/// valid, acyclic programs that respect their declared density bounds, and every platform must
/// schedule them in agreement with the reference dependence graph.
mod synth_props {
    use super::*;
    use tis_exp::{SynthFamily, SynthSpec, MAX_IN_DEGREE};
    use tis_sim::SimRng;
    use tis_taskmodel::TaskId;

    fn arbitrary_spec() -> impl Strategy<Value = SynthSpec> {
        let family = (0u8..5, 1usize..=MAX_IN_DEGREE, 0.0f64..=1.0).prop_map(|(kind, width, density)| {
            match kind {
                0 => SynthFamily::Chain,
                1 => SynthFamily::Tree { arity: width },
                2 => SynthFamily::Diamond { width },
                3 => SynthFamily::ForkJoin { width },
                _ => SynthFamily::ErdosRenyi { density },
            }
        });
        (family, 1usize..40, 100u64..5_000, 0.0f64..0.9).prop_map(|(family, tasks, task_cycles, jitter)| {
            SynthSpec { family, tasks, task_cycles, jitter }
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Structure: valid descriptors, forward-only (hence acyclic) edges, in-degree within
        /// the Picos cap, and the family's declared edge bound.
        #[test]
        fn generated_dags_are_valid_acyclic_and_density_bounded(spec in arbitrary_spec(), seed in 0u64..1_000) {
            let program = spec.generate(&mut SimRng::new(seed));
            prop_assert!(program.validate().is_ok(), "descriptor constraints hold");
            prop_assert_eq!(program.task_count(), spec.tasks);
            let graph = program.reference_graph();
            // Acyclicity: in this dense-id representation every edge points forward in spawn
            // order, so a cycle is impossible iff no successor precedes its task.
            for i in 0..graph.task_count() {
                for s in graph.successors(TaskId(i as u64)) {
                    prop_assert!(s.raw() as usize > i, "edge {i}->{s} points backward");
                }
                prop_assert!(graph.predecessor_count(TaskId(i as u64)) <= MAX_IN_DEGREE);
            }
            prop_assert!(
                graph.edge_count() <= spec.max_edges(),
                "{} edges exceed the declared bound {} for {:?}",
                graph.edge_count(), spec.max_edges(), spec.family
            );
        }

        /// Execution: every platform schedules every synthetic family correctly.
        #[test]
        fn every_platform_schedules_synthetic_graphs_correctly(spec in arbitrary_spec(), seed in 0u64..1_000) {
            let program = spec.generate(&mut SimRng::new(seed));
            let harness = Harness::with_cores(2);
            for platform in Platform::ALL {
                let report = harness
                    .run(platform, &program)
                    .unwrap_or_else(|e| panic!("{} deadlocked on {}: {e}", platform.label(), program.name()));
                prop_assert_eq!(report.tasks_retired as usize, spec.tasks);
                if let Err(e) = report.validate_against(&program) {
                    return Err(TestCaseError::fail(
                        format!("{} violated dependences on {}: {e}", platform.label(), program.name()),
                    ));
                }
            }
        }
    }
}
