//! The multi-tenant differential and property wall.
//!
//! PR 10 threads tenants through every layer — taskmodel source merging, Picos admission
//! policy, engine accounting, sweep grid, observability. The contract that keeps the rest of
//! the repo honest is *degeneracy*: a 1-tenant batch-at-zero [`TenantSet`] is the legacy
//! single-program run, byte for byte, on every platform. These tests pin that, plus the
//! serving-layer properties the `sweep_multi_tenant` CI bench relies on: worker-count
//! invariance of tenant sweeps, sum-consistent per-tenant accounting, and bit-exact Poisson
//! arrival replay. The last section closes two PR 9 test gaps: the critical-path profiler's
//! typed rejection of streamed records-off runs, and `WindowedPreflight` boundary behaviour.

use proptest::prelude::*;
use tis::analyze::WindowedPreflight;
use tis::bench::{Harness, Platform};
use tis::exp::{
    run_sweep_with_workers, StreamingSynth, Sweep, SynthFamily, SynthSpec, TenantScenario,
    WorkloadSpec,
};
use tis::machine::ExecutionReport;
use tis::obs::{critical_path_for_run, CriticalPathError};
use tis::sim::SimRng;
use tis::taskmodel::{
    ArrivalGen, ArrivalProcess, Dependence, MaterializedSource, TaskProgram, TenantSet,
    TenantTrackerPolicy,
};
use tis::workloads::task_chain;

fn er_program(seed: u64) -> TaskProgram {
    let spec = SynthSpec {
        family: SynthFamily::ErdosRenyi { density: 0.12 },
        tasks: 48,
        task_cycles: 900,
        jitter: 0.5,
    };
    spec.generate(&mut SimRng::new(seed))
}

/// Strips the two fields that are *allowed* to differ between the legacy path and a 1-tenant
/// set: the runtime label (it embeds the source name) and the per-tenant report list (empty
/// on the legacy path by design). Everything else — cycle counts, per-core stats, records,
/// fabric and memory statistics — must be identical.
fn comparable(mut report: ExecutionReport) -> ExecutionReport {
    report.runtime = String::new();
    report.tenants = Vec::new();
    report
}

/// Satellite 1, the differential wall: a 1-tenant batch-at-zero `TenantSet` is
/// *report-equal* (not just cycle-equal) to the legacy single-program path on all four
/// platforms, for both a serial chain and a random DAG.
#[test]
fn one_tenant_set_is_report_equal_to_the_single_program_path() {
    let harness = Harness::paper_prototype();
    for program in [task_chain(64, 2), er_program(7)] {
        for platform in Platform::ALL {
            let legacy = harness.run(platform, &program).expect("legacy run");
            let set = TenantSet::new().tenant(
                "t0",
                Box::new(MaterializedSource::new(&program)),
                ArrivalProcess::BatchAtZero,
            );
            let (tenant_report, data) = harness
                .run_tenants(platform, set.into_source(SimRng::new(99)), true, None)
                .expect("tenant run");

            // The tenant wrapper reports exactly one tenant, owning every task.
            assert_eq!(data.names, vec!["t0".to_string()]);
            assert_eq!(tenant_report.tenants.len(), 1);
            assert_eq!(tenant_report.tenants[0].tasks, legacy.tasks_retired);
            assert!(data.assignment.iter().all(|&t| t == 0));

            assert_eq!(
                comparable(legacy),
                comparable(tenant_report),
                "1-tenant set diverged from the single-program path on {platform:?} \
                 ({})",
                program.name()
            );
        }
    }
}

/// Per-tenant accounting on a genuinely co-scheduled run: task counts sum to the aggregate,
/// every distribution is ordered, and fairness stays in range. Runs on the hardware-tracked
/// platform and the all-software baseline.
#[test]
fn co_scheduled_accounting_is_sum_consistent_and_ordered() {
    let harness = Harness::with_cores(8);
    for platform in [Platform::Phentos, Platform::NanosSw] {
        let set = TenantSet::new()
            .tenant(
                "victim",
                Box::new(MaterializedSource::new(&er_program(11))),
                ArrivalProcess::Poisson { mean_interarrival: 1_000 },
            )
            .tenant(
                "burst",
                Box::new(MaterializedSource::new(&er_program(12))),
                ArrivalProcess::Bursty { burst: 16, period: 40_000 },
            )
            .tenant(
                "batch",
                Box::new(MaterializedSource::new(&task_chain(32, 1))),
                ArrivalProcess::BatchAtZero,
            )
            .with_policy(TenantTrackerPolicy::Partitioned { per_tenant_entries: 8 });
        let (report, data) = harness
            .run_tenants(platform, set.into_source(SimRng::new(3)), true, None)
            .expect("co-scheduled run");

        assert_eq!(report.tenants.len(), 3);
        let total: u64 = report.tenants.iter().map(|t| t.tasks).sum();
        assert_eq!(total, report.tasks_retired, "per-tenant tasks must sum to the aggregate");
        assert_eq!(data.assignment.len(), report.tasks_retired as usize);
        for t in &report.tenants {
            assert!(t.p50 <= t.p90 && t.p90 <= t.p99, "{platform:?}/{}: disordered", t.name);
            assert!(t.p99 <= t.makespan, "{platform:?}/{}: p99 above makespan", t.name);
            assert!(t.makespan <= report.total_cycles);
            assert!(t.turnaround_total >= t.p50, "totals can never undercut the median");
            assert!(t.mean_turnaround() > 0.0);
        }
        let jain = report.tenant_jain_fairness();
        assert!((0.0..=1.0 + 1e-12).contains(&jain), "Jain index out of range: {jain}");
    }
}

fn arbitrary_scenario() -> impl Strategy<Value = TenantScenario> {
    (2usize..=8, 0u8..3, 1u64..5_000, any::<bool>()).prop_map(|(n, kind, param, part)| {
        match kind {
            0 => TenantScenario::batch(n, part),
            1 => TenantScenario::poisson(n, param.max(1), part),
            _ => TenantScenario::bursty(n, 1 + param % 32, 10_000 + param * 7, part),
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// Satellite 2a: for arbitrary (seed, tenant count, arrival process, policy), the sweep
    /// artifact — down to the rendered JSON bytes — is identical at 1, 2 and 8 host workers,
    /// and per-tenant accounting inside every cell stays sum-consistent.
    #[test]
    fn tenant_sweeps_are_worker_count_invariant(seed in any::<u64>(), scenario in arbitrary_scenario()) {
        let sweep = Sweep::new("tenant-prop")
            .over_cores([4])
            .over_platforms([Platform::Phentos])
            .over_tenants([None, Some(scenario)])
            .with_seed(seed)
            .with_workload(WorkloadSpec::synth(SynthSpec {
                family: SynthFamily::ErdosRenyi { density: 0.15 },
                tasks: 24,
                task_cycles: 700,
                jitter: 0.25,
            }));
        let baseline = run_sweep_with_workers(&sweep, 1);
        let json = baseline.to_json().render();
        for workers in [2, 8] {
            let parallel = run_sweep_with_workers(&sweep, workers);
            prop_assert_eq!(&json, &parallel.to_json().render(),
                "{}-worker tenant sweep diverged", workers);
        }
        for cell in &baseline.cells {
            if let Some(data) = &cell.tenant {
                let total: u64 = data.reports.iter().map(|r| r.tasks).sum();
                prop_assert_eq!(total, cell.tasks as u64);
                prop_assert!((0.0..=1.0 + 1e-12).contains(&data.jain));
            }
        }
    }

    /// Satellite 2b: Poisson arrivals replay bit-exact from `(seed, config)` — the whole
    /// schedule is a pure function of the RNG substream — and arrival times never decrease.
    #[test]
    fn poisson_arrivals_replay_bit_exact(seed in any::<u64>(), mean in 1u64..100_000) {
        let gen = |s: u64| {
            let mut g = ArrivalGen::new(
                ArrivalProcess::Poisson { mean_interarrival: mean },
                SimRng::new(s).stream("tenant-arrivals", 0),
            );
            (0..256).map(|_| g.next_arrival()).collect::<Vec<u64>>()
        };
        let a = gen(seed);
        let b = gen(seed);
        prop_assert_eq!(&a, &b, "same (seed, config) must replay the same schedule");
        prop_assert!(a.windows(2).all(|w| w[0] <= w[1]), "arrivals must be monotone");
        // A different seed draws a different schedule (256 draws make a collision
        // astronomically unlikely for any mean that can produce distinct gaps).
        if mean > 2 {
            prop_assert_ne!(a, gen(seed ^ 0xDEAD_BEEF));
        }
    }
}

/// The arrival substream is pinned: these exact draws back the checked-in
/// `BENCH_sweep_multi-tenant.json` baseline, so silent RNG drift fails here before it fails
/// the CI trajectory diff.
#[test]
fn poisson_arrival_schedule_is_pinned() {
    let mut g = ArrivalGen::new(
        ArrivalProcess::Poisson { mean_interarrival: 1_000 },
        SimRng::new(42).stream("tenant-arrivals", 0),
    );
    let first: Vec<u64> = (0..8).map(|_| g.next_arrival()).collect();
    assert_eq!(first, PINNED_POISSON_42, "Poisson arrival stream drifted from the pinned replay");
}

/// First eight arrivals of `Poisson{mean=1000}` under `SimRng::new(42).stream("tenant-arrivals", 0)`.
const PINNED_POISSON_42: [u64; 8] = [2, 467, 2105, 2646, 2648, 5427, 5967, 7068];

/// PR 9 gap, per-platform: a streamed records-off run retires tasks that no trace observed;
/// the critical-path profiler must reject it with the typed error instead of decomposing the
/// makespan into all-scheduler noise.
#[test]
fn streamed_records_off_runs_are_rejected_by_the_critical_path_profiler() {
    let spec = SynthSpec::uniform(SynthFamily::Chain, 2_000, 300);
    for platform in Platform::ALL {
        let source = StreamingSynth::new(spec, 128, SimRng::new(5));
        let report = Harness::paper_prototype()
            .run_source(platform, Box::new(source), false)
            .expect("streamed run");
        assert_eq!(report.tasks_retired, 2_000);
        let verdict = critical_path_for_run(&[], &[], report.total_cycles, report.tasks_retired);
        assert_eq!(
            verdict,
            Err(CriticalPathError::NoObservedSpans { tasks_retired: 2_000 }),
            "{platform:?}: an unobserved streamed run must be rejected, not mis-profiled"
        );
    }
}

/// PR 9 gap: a window of 1 (including the clamp from 0) still proves every adjacent
/// same-address conflict; only pairs bridged by an evicted frontier age out.
#[test]
fn windowed_preflight_window_one_proves_adjacent_conflicts() {
    for requested in [0usize, 1] {
        let mut pf = WindowedPreflight::new(requested);
        for id in 0..10u64 {
            pf.observe_spawn(id, &[Dependence::read_write(0x100)]).expect("valid spawn");
        }
        let analysis = pf.finish();
        assert_eq!(analysis.window, 1, "window clamps to at least 1");
        assert_eq!(analysis.tasks, 10);
        // Every task rewrites the address the previous one just touched, so the frontier
        // entry is always inside the 1-task window: all 9 adjacent pairs are proven.
        assert_eq!(analysis.conflict_pairs, 9);
        assert_eq!(analysis.covered_in_window, 9);
        assert_eq!(analysis.aged_out_addresses, 0);
    }

    // Alternate two addresses: with a 1-task window each frontier entry is evicted before
    // the next touch of its address, so no pair is provable and the age-outs are counted.
    let mut pf = WindowedPreflight::new(1);
    for id in 0..10u64 {
        let addr = if id % 2 == 0 { 0x200 } else { 0x240 };
        pf.observe_spawn(id, &[Dependence::read_write(addr)]).expect("valid spawn");
    }
    let analysis = pf.finish();
    assert_eq!(analysis.conflict_pairs, 0, "distance-2 pairs are invisible to a 1-task window");
    assert!(analysis.aged_out_addresses > 0, "evictions must be counted, not silent");
}

/// PR 9 gap: the degenerate single-task program flows through the windowed checker.
#[test]
fn windowed_preflight_accepts_a_single_task_program() {
    let mut pf = WindowedPreflight::new(4);
    pf.observe_spawn(0, &[Dependence::read_write(0x300), Dependence::read(0x340)])
        .expect("valid spawn");
    let analysis = pf.finish();
    assert_eq!(analysis.tasks, 1);
    assert_eq!(analysis.taskwaits, 0);
    assert_eq!(analysis.phases, 1);
    assert_eq!(analysis.conflict_pairs, 0);
    assert_eq!(analysis.peak_tracked_addresses, 2);
    assert_eq!(analysis.aged_out_addresses, 0);
}

/// PR 9 gap: a conflict whose endpoints sit exactly one window apart is still proven — the
/// amortised age-out sweep keeps state touched at the horizon — while a pair one full sweep
/// beyond is evicted and counted as aged out.
#[test]
fn windowed_preflight_frontier_at_the_window_boundary() {
    // Distance exactly `window` (4): writer at T0, fillers at T1..T3, writer again at T4.
    let mut pf = WindowedPreflight::new(4);
    pf.observe_spawn(0, &[Dependence::read_write(0x400)]).expect("valid spawn");
    for id in 1..4u64 {
        pf.observe_spawn(id, &[Dependence::read_write(0x400 + id * 0x40)]).expect("valid spawn");
    }
    pf.observe_spawn(4, &[Dependence::read_write(0x400)]).expect("valid spawn");
    let analysis = pf.finish();
    assert_eq!(analysis.conflict_pairs, 1, "a pair at exactly window distance is provable");
    assert_eq!(analysis.covered_in_window, 1);
    assert_eq!(analysis.aged_out_addresses, 0);

    // Two windows apart: the sweep at T8 evicts T0's frontier before T8's write lands.
    let mut pf = WindowedPreflight::new(4);
    pf.observe_spawn(0, &[Dependence::read_write(0x500)]).expect("valid spawn");
    for id in 1..8u64 {
        pf.observe_spawn(id, &[Dependence::read_write(0x500 + id * 0x40)]).expect("valid spawn");
    }
    pf.observe_spawn(8, &[Dependence::read_write(0x500)]).expect("valid spawn");
    let analysis = pf.finish();
    assert_eq!(analysis.conflict_pairs, 0, "a pair two windows apart is not provable");
    assert!(analysis.aged_out_addresses > 0, "the bridged eviction must be counted");
}
