//! End-to-end integration tests: every platform runs real workloads from the paper's catalog on
//! a multi-core machine and produces a schedule that the reference dependence graph accepts.

use tis_bench::{evaluate_workload, Harness, Platform};
use tis_workloads::blackscholes::blackscholes;
use tis_workloads::jacobi::jacobi;
use tis_workloads::sparselu::sparselu;
use tis_workloads::stream::stream;
use tis_workloads::WorkloadInstance;

fn instance(benchmark: &'static str, input: &str, program: tis_taskmodel::TaskProgram) -> WorkloadInstance {
    WorkloadInstance { benchmark, input: input.to_string(), program }
}

#[test]
fn blackscholes_runs_on_all_platforms() {
    let harness = Harness::with_cores(4);
    let w = instance("blackscholes", "1K B32", blackscholes(1024, 32));
    let r = evaluate_workload(&harness, &w, &Platform::ALL);
    assert_eq!(r.platforms.len(), 4);
    // Normalised performance ordering of the paper: Phentos >= Nanos-RV >= Nanos-SW on
    // fine-to-medium granularity inputs.
    let phentos = r.speedup(Platform::Phentos).unwrap();
    let rv = r.speedup(Platform::NanosRv).unwrap();
    let sw = r.speedup(Platform::NanosSw).unwrap();
    assert!(phentos >= rv, "phentos {phentos:.2} vs nanos-rv {rv:.2}");
    assert!(rv >= sw * 0.9, "nanos-rv {rv:.2} should not lose clearly to nanos-sw {sw:.2}");
}

#[test]
fn sparselu_dependence_heavy_graph_is_scheduled_correctly_everywhere() {
    let harness = Harness::with_cores(4);
    let w = instance("sparselu", "NB6 M4", sparselu(6, 4));
    // evaluate_workload panics internally if any schedule violates the reference graph.
    let r = evaluate_workload(&harness, &w, &Platform::ALL);
    for p in Platform::ALL {
        assert!(r.speedup(p).unwrap() > 0.0, "{} did not finish", p.label());
    }
}

#[test]
fn jacobi_stencil_runs_and_respects_cross_sweep_dependences() {
    let harness = Harness::with_cores(4);
    let w = instance("jacobi", "N64 B8", jacobi(64, 8));
    let r = evaluate_workload(&harness, &w, &[Platform::Phentos, Platform::NanosRv]);
    assert!(r.speedup(Platform::Phentos).unwrap() > 0.5);
}

#[test]
fn stream_variants_complete_under_bandwidth_pressure() {
    let harness = Harness::with_cores(4);
    for (name, barriers) in [("stream-deps", false), ("stream-barr", true)] {
        let w = instance(name, "8x4K", stream(8, 4 * 1024, barriers));
        let r = evaluate_workload(&harness, &w, &[Platform::Phentos, Platform::NanosSw]);
        let phentos = r.speedup(Platform::Phentos).unwrap();
        assert!(phentos > 1.0, "{name}: memory-intense workload should still beat serial, got {phentos:.2}");
        assert!(
            phentos <= harness.cores() as f64 + 0.01,
            "{name}: speedup cannot exceed the core count, got {phentos:.2}"
        );
    }
}

#[test]
fn eight_core_phentos_reaches_paper_scale_speedups_on_coarse_blackscholes() {
    let harness = Harness::paper_prototype();
    let w = instance("blackscholes", "16K B256", blackscholes(16 * 1024, 256));
    let r = evaluate_workload(&harness, &w, &[Platform::Phentos]);
    let s = r.speedup(Platform::Phentos).unwrap();
    assert!(
        s > 4.0 && s <= 8.0,
        "coarse blackscholes on 8 cores should land in the paper's 4-6x range, got {s:.2}"
    );
}

#[test]
fn core_count_extremes_work_on_every_platform() {
    // Regression guard for hardcoded 8-core assumptions anywhere in the stack: the exact same
    // code paths must hold at one core (fully serialised: no worker, the main thread does
    // everything) and at 64 cores (eight times the paper's prototype). Every platform must
    // complete, retire every task, and produce a valid schedule at both extremes.
    for cores in [1usize, 64] {
        let harness = Harness::with_cores(cores);
        let w = instance("blackscholes", "4K B64", blackscholes(4 * 1024, 64));
        // evaluate_workload panics internally on an invalid schedule.
        let r = evaluate_workload(&harness, &w, &Platform::ALL);
        for p in Platform::ALL {
            let s = r.speedup(p).unwrap();
            assert!(s > 0.0, "{} did not finish on {cores} cores", p.label());
            assert!(
                s <= cores as f64 + 0.01,
                "{} exceeds the machine's parallelism on {cores} cores: {s:.2}",
                p.label()
            );
        }
    }
    // The 64-core machine must actually use its width on a wide workload: with the catalog's
    // core-count context (512 independent blocks), Phentos lands far beyond the 8-core ceiling.
    let harness = Harness::with_cores(64);
    let w64 = tis::workloads::paper_catalog_for_cores(64)
        .into_iter()
        .find(|w| w.benchmark == "blackscholes" && w.input == "4K B64")
        .expect("catalog entry exists");
    let w64 = instance("blackscholes", "4K B64 (64-core context)", w64.program);
    let r = evaluate_workload(&harness, &w64, &[Platform::Phentos]);
    let s = r.speedup(Platform::Phentos).unwrap();
    assert!(s > 30.0, "64-core Phentos should scale far beyond the 8-core ceiling, got {s:.2}");
}

#[test]
fn core_count_scaling_improves_phentos_makespan() {
    let program = blackscholes(4 * 1024, 64);
    let mut previous = u64::MAX;
    for cores in [1usize, 2, 4, 8] {
        let harness = Harness::with_cores(cores);
        let report = harness.run(Platform::Phentos, &program).unwrap();
        assert!(
            report.total_cycles < previous,
            "{cores}-core run should be faster than the previous configuration"
        );
        previous = report.total_cycles;
    }
}

#[test]
fn materialized_source_adapter_reproduces_real_workload_runs_bit_for_bit() {
    // The streaming engine consumes every workload through a TaskSource; the MaterializedSource
    // adapter must make that refactor invisible on real catalog programs — the report from the
    // pull-based path (records on) equals Harness::run's byte for byte, on every platform, and
    // its residency high-water mark reflects the program's true maximum in-flight task count.
    use tis_taskmodel::MaterializedSource;

    let harness = Harness::with_cores(4);
    for (name, program) in
        [("blackscholes", blackscholes(512, 32)), ("sparselu", sparselu(6, 24))]
    {
        for platform in Platform::ALL {
            let direct = harness.run(platform, &program).expect("direct run must complete");
            let adapted = harness
                .run_source(platform, Box::new(MaterializedSource::new(&program)), true)
                .expect("adapted run must complete");
            assert_eq!(
                adapted, direct,
                "{name} on {platform:?}: the MaterializedSource path diverged from Harness::run"
            );
            assert!(
                direct.peak_resident_tasks > 0
                    && direct.peak_resident_tasks <= direct.tasks_retired,
                "{name} on {platform:?}: residency high-water mark must be within (0, tasks]"
            );
        }
    }
}
