//! Cross-crate correctness: randomly generated programs run on every runtime must produce
//! schedules that respect the sequential semantics, retire every task exactly once, and never
//! deadlock.

use tis_bench::{Harness, Platform};
use tis_sim::SimRng;
use tis_taskmodel::{Dependence, Direction, Payload, ProgramBuilder, TaskProgram};

/// Deterministic pseudo-random program generator (no proptest shrinking needed here; failures
/// print the seed).
fn random_program(seed: u64, tasks: usize) -> TaskProgram {
    let mut rng = SimRng::new(seed);
    let mut b = ProgramBuilder::new(format!("random-{seed}"));
    for _ in 0..tasks {
        let ndeps = rng.below(4) as usize;
        let mut deps = Vec::new();
        let mut used = Vec::new();
        for _ in 0..ndeps {
            let addr = 0x6000_0000 + rng.below(12) * 64;
            if used.contains(&addr) {
                continue;
            }
            used.push(addr);
            let dir = match rng.below(3) {
                0 => Direction::In,
                1 => Direction::Out,
                _ => Direction::InOut,
            };
            deps.push(Dependence::new(addr, dir));
        }
        b.spawn(Payload::compute(rng.range(100, 3_000)), deps);
        if rng.chance(0.1) {
            b.taskwait();
        }
    }
    b.taskwait();
    b.build()
}

#[test]
fn random_programs_are_scheduled_correctly_by_every_platform() {
    let harness = Harness::with_cores(3);
    for seed in [1u64, 7, 42, 1234] {
        let program = random_program(seed, 40);
        let expected = program.task_count() as u64;
        for platform in Platform::ALL {
            let report = harness
                .run(platform, &program)
                .unwrap_or_else(|e| panic!("seed {seed} on {}: {e}", platform.label()));
            assert_eq!(report.tasks_retired, expected, "seed {seed} on {}", platform.label());
            assert_eq!(report.records.len() as u64, expected, "seed {seed} on {}", platform.label());
            report
                .validate_against(&program)
                .unwrap_or_else(|e| panic!("seed {seed} on {} violated semantics: {e}", platform.label()));
        }
    }
}

#[test]
fn single_core_execution_is_equivalent_to_a_serial_schedule() {
    let harness = Harness::with_cores(1);
    let program = random_program(99, 30);
    for platform in [Platform::Phentos, Platform::NanosSw] {
        let report = harness.run(platform, &program).unwrap();
        report.validate_against(&program).unwrap();
        // On one core, the payload time alone already accounts for the serial sum.
        let payload: u64 = report.core_stats.iter().map(|s| s.payload_cycles).sum();
        let serial_payload: u64 = program.tasks().map(|t| t.payload.compute_cycles).sum();
        assert_eq!(payload, serial_payload, "{}", platform.label());
        assert!(report.total_cycles >= serial_payload);
    }
}

#[test]
fn dependence_chains_serialise_on_every_platform() {
    // A pure chain can never run faster than the sum of its payloads, no matter the runtime.
    let mut b = ProgramBuilder::new("chain");
    for _ in 0..15 {
        b.spawn(Payload::compute(4_000), vec![Dependence::read_write(0x1234_0000)]);
    }
    b.taskwait();
    let program = b.build();
    let harness = Harness::with_cores(4);
    for platform in Platform::ALL {
        let report = harness.run(platform, &program).unwrap();
        assert!(
            report.total_cycles >= 15 * 4_000,
            "{} finished a serial chain impossibly fast",
            platform.label()
        );
        report.validate_against(&program).unwrap();
    }
}

#[test]
fn speedup_never_exceeds_core_count() {
    let harness = Harness::with_cores(4);
    for seed in [5u64, 17] {
        let program = random_program(seed, 60);
        let serial = harness.serial_cycles(&program);
        for platform in [Platform::Phentos, Platform::NanosRv] {
            let report = harness.run(platform, &program).unwrap();
            let speedup = report.speedup_over(serial);
            assert!(
                speedup <= harness.cores() as f64 + 1e-9,
                "seed {seed} on {}: speedup {speedup:.2} exceeds the core count",
                platform.label()
            );
        }
    }
}
