//! Workspace smoke test: the cheapest end-to-end exercise of every layer.
//!
//! Guards against manifest regressions (a crate dropped from the workspace, a broken dependency
//! edge, a renamed library target): it pulls one small catalog workload through all four
//! [`Platform`]s and checks each run completes with a plausible report. If this file fails to
//! *compile*, the workspace wiring is broken; if it fails to *run*, the execution engine is.

use tis_bench::{Harness, Platform};
use tis_workloads::paper_catalog;

#[test]
fn every_platform_completes_a_small_catalog_workload() {
    // Smallest catalog entry by task count keeps this test fast even unoptimised.
    let catalog = paper_catalog();
    let workload = catalog
        .iter()
        .min_by_key(|w| w.program.task_count())
        .expect("catalog is never empty");

    let harness = Harness::default();
    let serial = harness.serial_cycles(&workload.program);
    assert!(serial > 0, "serial baseline must cost cycles");

    for platform in Platform::ALL {
        let report = harness
            .run(platform, &workload.program)
            .unwrap_or_else(|e| panic!("{} failed on {}: {e}", workload.label(), platform.label()));
        assert!(
            report.total_cycles > 0,
            "{} on {} reported zero cycles",
            workload.label(),
            platform.label()
        );
        assert_eq!(
            report.tasks_retired,
            workload.program.task_count() as u64,
            "{} on {} retired the wrong number of tasks",
            workload.label(),
            platform.label()
        );
        report
            .validate_against(&workload.program)
            .unwrap_or_else(|e| panic!("{} on {} violated dependences: {e}", workload.label(), platform.label()));
    }
}

#[test]
fn facade_reexports_every_layer() {
    // One symbol per re-exported crate, so removing a facade re-export breaks tier-1.
    let _ = tis::sim::SimRng::new(1);
    let _ = tis::taskmodel::Payload::compute(1);
    let _ = tis::mem::LINE_SIZE;
    let _ = tis::machine::MachineConfig::default();
    let _ = tis::picos::TrackerConfig::default();
    let _ = tis::nanos::NanosVariant::Software;
    let _ = tis::core::TisConfig::default();
    let _ = tis::workloads::task_free(1, 1);
    let _ = tis::bench::Platform::ALL;
    let _ = tis::exp::Sweep::new("smoke");
}
