//! Scale regression tests for the streaming engine: long dependence chains through a
//! bounded-window [`tis::exp::StreamingSynth`] source with per-task records off, checking the
//! counter arithmetic that only goes wrong when `tasks` is far beyond what any materialized
//! cell reaches.
//!
//! These run in debug builds on purpose: `ExecutionReport::core_utilisation` carries
//! debug-assert partition invariants (busy + idle must equal cores × makespan exactly, with
//! every intermediate add checked), so the decomposition is machine-verified here, and the
//! explicit assertions below re-state the same sums for release runs. The default-size test
//! keeps `cargo test` fast; the full 2,000,000-task soak of the satellite audit is `#[ignore]`d
//! (run it with `cargo test -q --test streaming_scale -- --ignored`), and the release-built
//! `sweep_streaming_scale` bench gates a 1,000,000-task cell on every CI run.

use tis::bench::{Harness, Platform};
use tis::exp::{StreamingSynth, SynthFamily, SynthSpec};
use tis::sim::SimRng;

/// Streams a `tasks`-long chain (records off) and checks the makespan decomposition sums
/// exactly: every per-core busy/idle split partitions cores × makespan, retirements match the
/// streamed task count, and residency stayed within the window.
fn chain_decomposition(tasks: usize, window: usize) {
    let spec = SynthSpec::uniform(SynthFamily::Chain, tasks, 500);
    let source = StreamingSynth::new(spec, window, SimRng::new(0xCAFE));
    let harness = Harness::paper_prototype();
    let report = harness
        .run_source(Platform::Phentos, Box::new(source), false)
        .expect("streamed chain must complete");

    assert_eq!(report.tasks_retired, tasks as u64, "every streamed task must retire");
    assert!(
        report.peak_resident_tasks <= window as u64,
        "peak resident descriptors {} exceeded the {window}-task window",
        report.peak_resident_tasks
    );

    // The per-phase totals of the makespan decomposition, summed exactly (checked arithmetic —
    // a silent wrap at 10⁶-task scale is precisely what the satellite audit guards against).
    let split = report.core_utilisation(); // debug builds also re-assert the partition here
    let accounted: u64 = split
        .iter()
        .try_fold(0u64, |acc, u| {
            acc.checked_add(u.busy_cycles).and_then(|a| a.checked_add(u.idle_cycles))
        })
        .expect("decomposition sum overflows u64");
    let capacity = report
        .total_cycles
        .checked_mul(report.cores as u64)
        .expect("cores x makespan overflows u64");
    assert_eq!(accounted, capacity, "busy + idle must sum exactly to cores x makespan");
    for (core, (u, s)) in split.iter().zip(&report.core_stats).enumerate() {
        assert_eq!(
            u.busy_cycles,
            s.payload_cycles
                .checked_add(s.runtime_cycles)
                .expect("per-core busy cycles overflow u64")
                .min(report.total_cycles),
            "core {core}: busy cycles must equal accounted payload + runtime (clamped)"
        );
        assert_eq!(
            u.busy_cycles + u.idle_cycles,
            report.total_cycles,
            "core {core}: busy + idle must equal the makespan exactly"
        );
    }

    // A chain executes serially: the makespan is at least the sum of every payload, and the
    // mean per-task cycle figure divides back out without rounding surprises.
    assert!(report.total_cycles >= 500u64 * tasks as u64, "chain payloads execute back to back");
    let mean = report.mean_cycles_per_task();
    assert!(
        (mean - report.total_cycles as f64 / tasks as f64).abs() < 1e-9,
        "mean cycles/task must be makespan / tasks"
    );
}

#[test]
fn streamed_chain_phase_totals_sum_exactly_to_the_makespan_decomposition() {
    chain_decomposition(120_000, 1_024);
}

/// The full-scale satellite soak: two million streamed tasks through the same decomposition
/// audit. Several minutes in a debug build, so opt-in; the release-built streaming-scale
/// bench covers the million-task regime on every CI run.
#[test]
#[ignore = "multi-minute debug-build soak: cargo test -q --test streaming_scale -- --ignored"]
fn two_million_task_chain_decomposition_soak() {
    chain_decomposition(2_000_000, 1_024);
}
