//! Tier-1 gates for the observability layer (`tis-obs`).
//!
//! Two claims are machine-checked here:
//!
//! 1. **Observation is free when off and invisible when on.** Attaching a [`NullObserver`]
//!    (or a full [`Recorder`]) to any run produces an [`ExecutionReport`] *equal* to the
//!    unobserved run — same cycles, same records, same stats — on the whole Figure 7 grid and
//!    a Figure 9 subset. The five checked-in `bench-baselines/` artifacts carry no obs keys,
//!    so obs-off artifacts stay byte-identical to the pre-obs seed.
//! 2. **What it reports is exact.** The critical-path profiler partitions every makespan into
//!    gap-free segments whose totals sum to the makespan *exactly*, across the entire paper
//!    catalog on all four platforms; per-core busy/idle splits partition `cores × makespan`
//!    the same way; and a hand-built diamond DAG exports a byte-pinned Perfetto document
//!    (golden file: `bench-baselines/TRACE_diamond_golden.json`, regenerate with
//!    `TIS_REPIN=1 cargo test --test observability`).

use std::path::Path;

use tis::analyze::GraphSpec;
use tis::bench::{figure7_workloads, Harness, Platform};
use tis::machine::MachineConfig;
use tis::obs::{NullObserver, ObsConfig, Recorder};
use tis::sim::json::Json;
use tis::taskmodel::{Dependence, Payload, ProgramBuilder, TaskProgram};
use tis::workloads::{entry_for_cores, paper_catalog_for_cores};

/// The five artifacts CI diffs against; any obs key in one would mean obs-off output moved.
const BASELINES: &[&str] = &[
    "BENCH_fig09.json",
    "BENCH_sweep_fault-injection.json",
    "BENCH_sweep_memory-scaling.json",
    "BENCH_sweep_noc-contention.json",
    "BENCH_sweep_tracker-capacity.json",
];

fn baseline_dir() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/bench-baselines"))
}

/// A 4-task diamond: t0 fans out to t1/t2, which join in t3. Fixed payloads (t1 carries a
/// DRAM transfer so a memory-stall segment exists), so the export is fully deterministic.
fn diamond_program() -> TaskProgram {
    let mut b = ProgramBuilder::new("diamond-golden");
    b.spawn(Payload::new(2_000, 0), vec![Dependence::write(0x1000)]);
    b.spawn(Payload::new(3_000, 4_096), vec![Dependence::read(0x1000), Dependence::write(0x2000)]);
    b.spawn(Payload::new(2_500, 0), vec![Dependence::read(0x1000), Dependence::write(0x3000)]);
    b.spawn(Payload::new(1_500, 0), vec![Dependence::read(0x2000), Dependence::read(0x3000)]);
    b.taskwait();
    b.build()
}

#[test]
fn observers_change_nothing_on_the_fig07_grid() {
    // Every cell of the Figure 7 grid, three ways: unobserved, NullObserver, full Recorder.
    // All three reports must be *equal* — not just same-makespan: same records, same stats.
    let prototype = Harness::paper_prototype();
    let single = Harness { machine: MachineConfig { cores: 1, ..prototype.machine }, ..prototype };
    for platform in Platform::ALL {
        for (label, program) in figure7_workloads(50) {
            let plain = single.run(platform, &program).expect(label);
            let mut null = NullObserver;
            let nulled = single.run_observed(platform, &program, &mut null).expect(label);
            assert_eq!(plain, nulled, "{label} on {}: NullObserver moved the run", platform.key());
            let mut rec = Recorder::new(ObsConfig::full());
            let recorded = single.run_observed(platform, &program, &mut rec).expect(label);
            assert_eq!(plain, recorded, "{label} on {}: recording moved the run", platform.key());
            // And the recording itself is coherent: all 50 tasks seen start to finish.
            let complete =
                rec.spans().iter().filter(|s| s.submit.is_some() && s.retire.is_some()).count();
            assert_eq!(complete, 50, "{label} on {}: incomplete spans", platform.key());
        }
    }
}

#[test]
fn observers_change_nothing_on_a_fig09_subset() {
    // The paper's 8-core scale, one dependence-heavy catalog entry per platform trio.
    let harness = Harness::paper_prototype();
    let w = entry_for_cores("sparselu", "N32 M4", harness.cores()).expect("catalog entry");
    for platform in Platform::FIGURE9 {
        let plain = harness.run(platform, &w.program).expect("plain run");
        let mut rec = Recorder::new(ObsConfig::default());
        let recorded = harness.run_observed(platform, &w.program, &mut rec).expect("observed run");
        assert_eq!(plain, recorded, "sparselu on {}: observation moved the run", platform.key());
        assert!(rec.task_events() > 0);
    }
}

#[test]
fn checked_in_baselines_carry_no_obs_keys() {
    // The obs keys are emitted only for observed cells, so the five pre-obs artifacts must be
    // reproducible byte-for-byte by an obs-off sweep: no obs key may ever appear in them.
    for name in BASELINES {
        let path = baseline_dir().join(name);
        let contents = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        for needle in ["obs_sample_interval", "obs_task_events", "obs_samples", "critical_path"] {
            assert!(!contents.contains(needle), "{name} contains obs key {needle}");
        }
        Json::parse(&contents).unwrap_or_else(|e| panic!("{name} is not valid JSON: {e}"));
    }
}

#[test]
fn diamond_perfetto_export_matches_the_golden_file() {
    let program = diamond_program();
    let harness = Harness::with_cores(2);
    let mut rec = Recorder::new(ObsConfig::full());
    let report = harness.run_observed(Platform::Phentos, &program, &mut rec).expect("diamond");
    let doc = rec.perfetto_json("diamond-golden", harness.cores());
    let rendered = doc.render();

    let golden_path = baseline_dir().join("TRACE_diamond_golden.json");
    if std::env::var_os("TIS_REPIN").is_some_and(|v| !v.is_empty()) {
        std::fs::write(&golden_path, &rendered).expect("write golden trace");
        println!("re-pinned {}", golden_path.display());
        return;
    }
    let golden = std::fs::read_to_string(&golden_path)
        .unwrap_or_else(|e| panic!("{}: {e} (regenerate with TIS_REPIN=1)", golden_path.display()));
    assert_eq!(
        rendered, golden,
        "diamond Perfetto export drifted from the golden file; if intentional, regenerate \
         with TIS_REPIN=1 cargo test --test observability"
    );

    // Schema checks on top of the byte pin: the document is loadable trace-event JSON.
    let parsed = Json::parse(&golden).expect("golden trace parses");
    assert_eq!(parsed, doc);
    let Some(Json::Arr(events)) = parsed.get("traceEvents") else {
        panic!("traceEvents must be an array");
    };
    for e in events {
        let ph = e.get("ph").and_then(Json::as_str).expect("every event has a phase");
        assert!(matches!(ph, "M" | "X" | "C"), "unexpected phase {ph}");
    }
    // Three slices per executed task (fetch overhead, body, retire overhead).
    let slices = events.iter().filter(|e| e.get("ph").and_then(Json::as_str) == Some("X")).count();
    assert_eq!(slices, 3 * program.task_count());
    // The four task bodies appear, each timestamped inside the run.
    for task in 0..4u64 {
        let body = events
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some(&format!("task {task}")))
            .unwrap_or_else(|| panic!("task {task} has no body slice"));
        let ts = body.get("ts").and_then(Json::as_f64).expect("body has ts") as u64;
        assert!(ts < report.total_cycles);
    }
}

#[test]
fn critical_path_partitions_every_catalog_makespan_exactly() {
    // The profiler's exactness guarantee, exercised at full breadth: every catalog workload ×
    // all four platforms. Also the satellite check: per-core busy/idle splits partition
    // `cores × makespan` exactly on the same runs.
    let harness = Harness::with_cores(4);
    for w in paper_catalog_for_cores(harness.cores()) {
        let edges = GraphSpec::from_program(&w.program).edges;
        for platform in Platform::ALL {
            let mut rec = Recorder::new(ObsConfig { sample_interval: 0, mem_events: false });
            let report = harness
                .run_observed(platform, &w.program, &mut rec)
                .unwrap_or_else(|e| panic!("{} on {}: {e}", w.label(), platform.key()));
            let cp = rec.critical_path(&edges, report.total_cycles);
            assert_eq!(
                cp.total(),
                report.total_cycles,
                "{} on {}: decomposition must sum to the makespan",
                w.label(),
                platform.key()
            );
            assert!(!cp.tasks().is_empty(), "{} on {}: empty path", w.label(), platform.key());
            let util = report.core_utilisation();
            assert_eq!(util.len(), harness.cores());
            let split: u64 = util.iter().map(|u| u.busy_cycles + u.idle_cycles).sum();
            assert_eq!(
                split,
                report.total_cycles * harness.cores() as u64,
                "{} on {}: busy+idle must partition cores × makespan",
                w.label(),
                platform.key()
            );
        }
    }
}
