//! Minimal stand-in for the [`criterion`](https://docs.rs/criterion) benchmarking crate.
//!
//! The build environment has no network access, so the real criterion cannot be fetched. The
//! workspace's only criterion consumer (`crates/bench/benches/micro_components.rs`) uses
//! [`Criterion::bench_function`], [`Bencher::iter`] and the [`criterion_group!`] /
//! [`criterion_main!`] macros — this crate implements exactly that surface.
//!
//! Methodology (much simpler than real criterion, adequate for spotting order-of-magnitude
//! regressions): each benchmark is warmed up for ~50 ms, then sampled in batches sized to take
//! roughly one millisecond each; the **median** batch gives the reported nanoseconds per
//! iteration. There are no HTML reports, no statistics beyond min/median/max, and no comparison
//! against saved baselines — output is one text line per benchmark.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::hint::black_box;
use std::time::{Duration, Instant};

const WARMUP: Duration = Duration::from_millis(50);
const SAMPLES: usize = 31;
const TARGET_BATCH: Duration = Duration::from_millis(1);

/// Drives timing of a single benchmark body; handed to the closure given to
/// [`Criterion::bench_function`].
pub struct Bencher {
    /// Measured nanoseconds per iteration: (min, median, max).
    result: Option<(f64, f64, f64)>,
}

impl Bencher {
    /// Time `routine`, keeping its return value alive via [`black_box`] so the optimiser cannot
    /// delete the work.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up and estimate the cost of one iteration.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < WARMUP {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_nanos() as f64 / warm_iters.max(1) as f64;
        let batch = ((TARGET_BATCH.as_nanos() as f64 / per_iter.max(1.0)) as u64).max(1);

        let mut samples = Vec::with_capacity(SAMPLES);
        for _ in 0..SAMPLES {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            samples.push(start.elapsed().as_nanos() as f64 / batch as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        self.result = Some((samples[0], samples[SAMPLES / 2], samples[SAMPLES - 1]));
    }
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Run one named benchmark and print a single report line.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { result: None };
        f(&mut b);
        match b.result {
            Some((min, median, max)) => println!(
                "{id:<40} median {median:>12.1} ns/iter   (min {min:.1}, max {max:.1})"
            ),
            None => println!("{id:<40} (no measurement: Bencher::iter never called)"),
        }
        self
    }
}

/// Collect benchmark functions into a group runner, mirroring `criterion::criterion_group!`.
///
/// Only the simple `criterion_group!(name, target, ...)` form is supported.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `fn main` running the given groups, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
