//! Minimal, deterministic stand-in for the [`proptest`](https://docs.rs/proptest) crate.
//!
//! The build environment for this workspace has no network access and no vendored registry, so
//! the real `proptest` cannot be fetched. The workspace's property tests only use a small slice
//! of its API; this crate re-implements exactly that slice:
//!
//! * the [`Strategy`](strategy::Strategy) trait with [`prop_map`](strategy::Strategy::prop_map);
//! * integer-range, tuple, [`any`](arbitrary::any), [`bool::ANY`] and
//!   [`collection::vec`] strategies;
//! * the [`proptest!`] test macro with optional `#![proptest_config(...)]`;
//! * [`prop_assert!`] / [`prop_assert_eq!`] (implemented as panicking asserts — there is **no
//!   shrinking**, failures report the case index instead).
//!
//! Generation is fully deterministic: the RNG is seeded from the module path and test name, so a
//! failing case reproduces on every run and on every machine. If the real `proptest` is ever
//! vendored, this shim can be deleted and the `[workspace.dependencies]` entry repointed without
//! touching any test code.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod test_runner {
    //! The RNG and configuration types backing the [`proptest!`](crate::proptest) macro.

    /// Configuration accepted by `#![proptest_config(...)]`. Only the number of cases is
    /// honoured by the shim.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases each property test runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Explicit failure of one test case, as produced by [`TestCaseError::fail`].
    ///
    /// Real proptest distinguishes failures from aborts (rejected cases); the shim treats both
    /// as failures of the whole property, with no shrinking.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The case could not be set up; real proptest would retry with a fresh input.
        Abort(String),
        /// The property does not hold for this input.
        Fail(String),
    }

    impl TestCaseError {
        /// A failure carrying `reason`.
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError::Fail(reason.into())
        }

        /// An abort carrying `reason`.
        pub fn abort(reason: impl Into<String>) -> Self {
            TestCaseError::Abort(reason.into())
        }
    }

    impl core::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
            match self {
                TestCaseError::Abort(r) => write!(f, "case aborted: {r}"),
                TestCaseError::Fail(r) => write!(f, "case failed: {r}"),
            }
        }
    }

    /// What a property-test body evaluates to.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// A small SplitMix64 generator: deterministic, seedable from a test name, good enough
    /// statistical quality for generating test inputs.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed the generator deterministically from an arbitrary string (FNV-1a hash).
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Next 64 uniformly distributed bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0, "empty range handed to the proptest shim");
            // Multiply-shift rejection-free reduction is overkill for test generation; a plain
            // modulo keeps the shim simple and the bias negligible at these bound sizes.
            self.next_u64() % bound
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of type [`Self::Value`].
    ///
    /// Unlike real proptest there is no value tree and no shrinking: a strategy is just a
    /// deterministic function of the RNG state.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Produce one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform every generated value with `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let width = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(width) as i128) as $t
                }
            }

            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let width = (*self.end() as i128 - *self.start() as i128 + 1) as u64;
                    if width == 0 {
                        // Full-domain inclusive range of a 64-bit type.
                        rng.next_u64() as $t
                    } else {
                        (*self.start() as i128 + rng.below(width) as i128) as $t
                    }
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    // Real proptest also accepts floating-point ranges; test code sampling probabilities and
    // jitters (`0.0f64..1.0`) relies on them.
    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    impl Strategy for core::ops::RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            // The endpoint has probability ~2^-53 in real proptest too; sampling the half-open
            // interval keeps the shim trivial and is indistinguishable in practice.
            *self.start() + rng.next_f64() * (*self.end() - *self.start())
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }
}

pub mod arbitrary {
    //! The [`any`] entry point and the [`Arbitrary`] trait behind it.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use core::marker::PhantomData;

    /// Types that can be generated from raw RNG bits.
    pub trait Arbitrary {
        /// Generate one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl<T: Arbitrary> Arbitrary for Option<T> {
        fn arbitrary(rng: &mut TestRng) -> Option<T> {
            // 1-in-4 None keeps both variants well represented.
            if rng.below(4) == 0 {
                None
            } else {
                Some(T::arbitrary(rng))
            }
        }
    }

    /// Strategy producing arbitrary values of `T`; see [`any`].
    #[derive(Debug, Clone)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// A strategy over the whole domain of `T` (uniform bits; `Option` is `None` 25% of the
    /// time).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod bool {
    //! Strategies for `bool`.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy yielding `true` and `false` with equal probability.
    #[derive(Debug, Clone, Copy)]
    pub struct BoolAny;

    impl Strategy for BoolAny {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Generates `true` or `false`, fifty-fifty.
    pub const ANY: BoolAny = BoolAny;

    /// Strategy returned by [`weighted`].
    #[derive(Debug, Clone, Copy)]
    pub struct Weighted(f64);

    impl Strategy for Weighted {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            // 53 bits of mantissa are plenty for a test-input coin flip.
            let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
            unit < self.0
        }
    }

    /// Generates `true` with probability `probability_true`.
    pub fn weighted(probability_true: f64) -> Weighted {
        assert!(
            (0.0..=1.0).contains(&probability_true),
            "probability must lie in [0, 1]"
        );
        Weighted(probability_true)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Inclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.end > r.start, "empty vec size range");
            SizeRange { min: r.start, max: r.end - 1 }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange { min: *r.start(), max: *r.end() }
        }
    }

    /// Strategy returned by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u64 + 1;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A `Vec` whose length is drawn from `size` and whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Assert a condition inside a property test; panics with the condition text on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Assert two values are equal inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

/// Assert two values are different inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*);
    };
}

/// Skip the current case when an assumption does not hold.
///
/// The shim returns early from the per-case closure, so rejected cases still count against the
/// configured case budget.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Ok(());
        }
    };
}

/// Define property tests.
///
/// Supports the subset of the real macro's grammar used in this workspace: an optional leading
/// `#![proptest_config(expr)]`, then any number of `#[test] fn name(pat in strategy, ...) { .. }`
/// items (doc comments and extra attributes are preserved).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            (<$crate::test_runner::ProptestConfig as ::core::default::Default>::default())
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($config:expr) ) => {};
    ( ($config:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            for __case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                // Bodies may `return Err(TestCaseError::...)` like under real proptest; plain
                // bodies fall through to the trailing `Ok(())`.
                let run = || -> $crate::test_runner::TestCaseResult {
                    $body
                    ::core::result::Result::Ok(())
                };
                match ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run)) {
                    ::core::result::Result::Ok(::core::result::Result::Ok(())) => {}
                    ::core::result::Result::Ok(::core::result::Result::Err(e)) => panic!(
                        "proptest shim: property `{}` failed at case {} of {} (no shrinking): {}",
                        stringify!($name),
                        __case,
                        config.cases,
                        e
                    ),
                    ::core::result::Result::Err(payload) => {
                        eprintln!(
                            "proptest shim: property `{}` panicked at case {} of {} (no shrinking)",
                            stringify!($name),
                            __case,
                            config.cases
                        );
                        ::std::panic::resume_unwind(payload)
                    }
                }
            }
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}
