//! Facade crate for the **TIS** workspace — a simulator reproduction of
//! *Adding Tightly-Integrated Task Scheduling Acceleration to a RISC-V Multi-core Processor*
//! (Morais et al., MICRO 2019).
//!
//! The workspace is split into ten layered crates; this crate simply re-exports all of them so
//! the top-level `examples/` and `tests/` directories have a single anchor package, and so
//! downstream users can depend on one crate:
//!
//! | Layer | Crate | Role |
//! |-------|-------|------|
//! | substrate | [`sim`] | deterministic clocks, stats, RNG, bounded hardware queues, traces |
//! | model | [`taskmodel`] | task-parallel programs and the reference dependence graph |
//! | substrate | [`mem`] | MESI L1 caches, snooping interconnect, DRAM model |
//! | engine | [`machine`] | machine config, cost model, scheduler-fabric trait, execution engine |
//! | device | [`picos`] | the Picos hardware task-dependence manager (function + timing) |
//! | platform | [`core`] | RoCC instructions, Picos Delegate/Manager, TIS fabric, Phentos runtime |
//! | platform | [`nanos`] | Nanos-SW / Nanos-RV / Nanos-AXI behavioural runtime models |
//! | input | [`workloads`] | blackscholes, jacobi, sparselu, stream, microbenches, Figure 9 catalog |
//! | harness | [`bench`](mod@bench) | the experiment harness reproducing the paper's tables and figures |
//! | harness | [`exp`] | declarative sweeps, synthetic task graphs, parallel sweep runner |
//!
//! See `README.md` for the quickstart and `ARCHITECTURE.md` for the paper-section-to-module map.
//!
//! # Example
//!
//! ```
//! use tis::bench::{Harness, Platform};
//! use tis::workloads::task_chain;
//!
//! let program = task_chain(64, 2);
//! let report = Harness::default().run(Platform::Phentos, &program).unwrap();
//! assert!(report.total_cycles > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use tis_bench as bench;
pub use tis_core as core;
pub use tis_exp as exp;
pub use tis_machine as machine;
pub use tis_mem as mem;
pub use tis_nanos as nanos;
pub use tis_picos as picos;
pub use tis_sim as sim;
pub use tis_taskmodel as taskmodel;
pub use tis_workloads as workloads;
