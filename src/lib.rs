//! Facade crate for the **TIS** workspace — a simulator reproduction of
//! *Adding Tightly-Integrated Task Scheduling Acceleration to a RISC-V Multi-core Processor*
//! (Morais et al., MICRO 2019).
//!
//! The workspace is split into thirteen layered crates; this crate simply re-exports all of them so
//! the top-level `examples/` and `tests/` directories have a single anchor package, and so
//! downstream users can depend on one crate:
//!
//! | Layer | Crate | Role |
//! |-------|-------|------|
//! | substrate | [`sim`] | deterministic clocks, stats, RNG, bounded hardware queues, traces |
//! | model | [`taskmodel`] | task-parallel programs and the reference dependence graph |
//! | substrate | [`fault`] | deterministic fault injection: replayable drop/delay/dead-link and tracker-loss schedules |
//! | substrate | [`mem`] | MESI L1 caches, snooping interconnect, DRAM model |
//! | engine | [`machine`] | machine config, cost model, scheduler-fabric trait, execution engine |
//! | device | [`picos`] | the Picos hardware task-dependence manager (function + timing) |
//! | platform | [`core`] | RoCC instructions, Picos Delegate/Manager, TIS fabric, Phentos runtime |
//! | platform | [`nanos`] | Nanos-SW / Nanos-RV / Nanos-AXI behavioural runtime models |
//! | observability | [`obs`] | typed task-lifecycle events, metrics timelines, Perfetto export, critical-path profiler |
//! | input | [`workloads`] | blackscholes, jacobi, sparselu, stream, microbenches, Figure 9 catalog |
//! | harness | [`bench`](mod@bench) | the experiment harness reproducing the paper's tables and figures |
//! | harness | [`exp`] | declarative sweeps, synthetic task graphs, parallel sweep runner |
//! | verification | [`analyze`] | graph preflight, vector-clock race detection, protocol model check, `tis-lint` |
//!
//! See `README.md` for the quickstart and `ARCHITECTURE.md` for the paper-section-to-module map.
//!
//! # Example
//!
//! ```
//! use tis::bench::{Harness, Platform};
//! use tis::workloads::task_chain;
//!
//! let program = task_chain(64, 2);
//! let report = Harness::default().run(Platform::Phentos, &program).unwrap();
//! assert!(report.total_cycles > 0);
//! ```
//!
//! # Example: the NoC-contention sub-axis
//!
//! This is the README's "NoC contention" snippet, kept compiling and passing here so the
//! README can never rot:
//!
//! ```
//! use tis::bench::Platform;
//! use tis::exp::{MemoryModel, Sweep, SynthFamily, SynthSpec, WorkloadSpec};
//!
//! // Ideal vs contended mesh links on the same dense DAG, same 16-core machine:
//! // the contention penalty is the ratio of the two cells' mean memory latencies.
//! let report = Sweep::new("noc-demo")
//!     .over_cores([16])
//!     .over_memory_models([
//!         MemoryModel::directory_mesh(),           // infinite links (PR 4 baseline)
//!         MemoryModel::directory_mesh_contended(), // 8 B/cycle links, 4-flit buffers
//!     ])
//!     .over_platforms([Platform::Phentos])
//!     .with_workload(WorkloadSpec::synth(SynthSpec {
//!         family: SynthFamily::ErdosRenyi { density: 0.1 },
//!         tasks: 64,
//!         task_cycles: 6_000,
//!         jitter: 0.25,
//!     }))
//!     .run();
//! let (ideal, contended) = (&report.cells[0], &report.cells[1]);
//! assert!(contended.mean_mem_latency > ideal.mean_mem_latency);
//! assert!(contended.noc_link_wait_cycles > 0, "contended links queue");
//! assert_eq!(ideal.noc_link_wait_cycles, 0, "ideal links never do");
//! ```
//!
//! # Example: serving N tenants
//!
//! The README's "Serving N tenants on one machine" snippet, kept compiling and passing
//! here so the README can never rot:
//!
//! ```
//! use tis::bench::{Harness, Platform};
//! use tis::sim::SimRng;
//! use tis::taskmodel::{ArrivalProcess, MaterializedSource, TenantSet, TenantTrackerPolicy};
//! use tis::workloads::task_chain;
//!
//! // A Poisson-trickling service tenant and a bursty batch co-tenant share an 8-core
//! // machine; partitioning reserves tracker entries so neither can clog the other out.
//! let set = TenantSet::new()
//!     .tenant("svc", Box::new(MaterializedSource::new(&task_chain(24, 1))),
//!             ArrivalProcess::Poisson { mean_interarrival: 2_000 })
//!     .tenant("batch", Box::new(MaterializedSource::new(&task_chain(24, 1))),
//!             ArrivalProcess::Bursty { burst: 8, period: 30_000 })
//!     .with_policy(TenantTrackerPolicy::Partitioned { per_tenant_entries: 16 });
//! let (report, _tracks) = Harness::with_cores(8)
//!     .run_tenants(Platform::Phentos, set.into_source(SimRng::new(7)), true, None)
//!     .unwrap();
//! assert_eq!(report.tenants.iter().map(|t| t.tasks).sum::<u64>(), report.tasks_retired);
//! let svc = &report.tenants[0];
//! assert!(svc.p50 <= svc.p90 && svc.p90 <= svc.p99); // exact nearest-rank percentiles
//! assert!(report.tenant_jain_fairness() <= 1.0);
//! ```
//!
//! # Example: streaming execution
//!
//! The README's "Streaming a million tasks" snippet, kept compiling and passing here at
//! debug-build scale (the million-task version is the `sweep_streaming_scale` CI bench;
//! only the task count differs):
//!
//! ```
//! use tis::bench::{Harness, Platform};
//! use tis::exp::{StreamingSynth, SynthFamily, SynthSpec};
//! use tis::sim::SimRng;
//!
//! let spec = SynthSpec::uniform(SynthFamily::Chain, 20_000, 500);
//! let source = StreamingSynth::new(spec, 1_024, SimRng::new(42)); // 1 024-task window
//! let report = Harness::paper_prototype()
//!     .run_source(Platform::Phentos, Box::new(source), false) // false: no per-task records
//!     .unwrap();
//! assert_eq!(report.tasks_retired, 20_000);
//! assert!(report.peak_resident_tasks <= 1_024); // O(window) memory, machine-checked
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use tis_analyze as analyze;
pub use tis_bench as bench;
pub use tis_core as core;
pub use tis_exp as exp;
pub use tis_fault as fault;
pub use tis_machine as machine;
pub use tis_mem as mem;
pub use tis_nanos as nanos;
pub use tis_obs as obs;
pub use tis_picos as picos;
pub use tis_sim as sim;
pub use tis_taskmodel as taskmodel;
pub use tis_workloads as workloads;
